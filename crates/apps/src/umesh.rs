//! umesh — unstructured-mesh edge relaxation, the third classic irregular
//! workload (the paper's related work compares on "unstructured"; its
//! introduction motivates exactly this class of code).
//!
//! A static mesh: `n` nodes on a jittered 2-D grid, edges = 4-neighbour
//! grid links plus a seeded sprinkle of long-range links. Each sweep
//! computes a flux per edge from the endpoint values — through the edge
//! list as indirection array — accumulates into both endpoints, and
//! relaxes the node values. Structure-wise this is nbf with a *pair*
//! list (like moldyn) but a *static* one (like nbf), so it exercises the
//! remaining corner of the design space.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsd::{Dim, Rsd};
use sdsm_core::{validate, AccessType, Cluster, Desc, DsmConfig, RegionRef, Validator};
use simnet::{CostModel, SimTime};

use chaos::{
    block_partition, gather, inspector, scatter_add, ChaosWorld, Ghosted, TTable, TTableCache,
    TTableKind,
};

use crate::report::{RunReport, SystemKind};
use crate::work;
pub use crate::moldyn::TmkMode;

/// Relaxation weight per sweep.
pub const KAPPA: f64 = 0.05;

/// Modeled cost of one edge flux. Mesh kernels of this era computed a
/// nontrivial per-edge stencil (upwinding, limiters); 25 µs keeps the
/// workload compute-bound at the 1997 cost scale, like the paper's two
/// applications.
pub const EDGE_US: f64 = 25.0;

#[derive(Debug, Clone)]
pub struct UmeshConfig {
    /// Grid side (nodes = side²).
    pub side: usize,
    /// Extra long-range edges as a fraction of grid edges.
    pub longrange_frac: f64,
    pub sweeps: usize,
    pub nprocs: usize,
    pub seed: u64,
    pub page_size: usize,
    pub cost: CostModel,
}

impl UmeshConfig {
    pub fn small() -> Self {
        UmeshConfig {
            side: 32,
            longrange_frac: 0.05,
            sweeps: 4,
            nprocs: 4,
            seed: 11,
            page_size: 1024,
            cost: CostModel::default(),
        }
    }

    pub fn medium() -> Self {
        UmeshConfig {
            side: 128,
            longrange_frac: 0.05,
            sweeps: 10,
            nprocs: 8,
            seed: 11,
            page_size: 4096,
            cost: CostModel::default(),
        }
    }

    pub fn n(&self) -> usize {
        self.side * self.side
    }
}

/// The generated mesh: initial node values and the edge list (0-based
/// endpoint pairs, `a < b`, sorted — deterministic for a given seed).
#[derive(Debug, Clone)]
pub struct Mesh {
    pub x0: Vec<f64>,
    pub edges: Vec<(u32, u32)>,
}

pub fn gen_mesh(cfg: &UmeshConfig) -> Mesh {
    let side = cfg.side;
    let n = cfg.n();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
    let mut edges = Vec::new();
    for r in 0..side {
        for c in 0..side {
            let a = (r * side + c) as u32;
            if c + 1 < side {
                edges.push((a, a + 1));
            }
            if r + 1 < side {
                edges.push((a, a + side as u32));
            }
        }
    }
    let extra = (edges.len() as f64 * cfg.longrange_frac) as usize;
    for _ in 0..extra {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a != b {
            edges.push((a.min(b), a.max(b)));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Mesh { x0, edges }
}

/// One relaxation sweep over plain slices (the shared physics kernel).
fn sweep(x: &[f64], edges: &[(u32, u32)], acc: &mut [f64]) {
    acc.iter_mut().for_each(|a| *a = 0.0);
    for &(a, b) in edges {
        let flux = (x[a as usize] - x[b as usize]) * KAPPA;
        acc[a as usize] -= flux;
        acc[b as usize] += flux;
    }
}

pub struct SeqResult {
    pub report: RunReport,
    pub x: Vec<f64>,
}

pub fn run_seq(cfg: &UmeshConfig, mesh: &Mesh) -> SeqResult {
    let n = cfg.n();
    let mut x = mesh.x0.clone();
    let mut acc = vec![0.0f64; n];
    let mut time = SimTime::ZERO;
    for _ in 0..cfg.sweeps {
        sweep(&x, &mesh.edges, &mut acc);
        for (xi, a) in x.iter_mut().zip(&acc) {
            *xi += a;
        }
        time += work::t(EDGE_US, mesh.edges.len()) + work::t(work::ZERO_US, 2 * n);
    }
    let checksum = x.iter().map(|v| v.abs()).sum();
    SeqResult {
        report: RunReport {
            system: SystemKind::Sequential,
            time,
            seq_time: time,
            messages: 0,
            bytes: 0,
            inspector_s: 0.0,
            untimed_inspector_s: 0.0,
            validate_scan_s: 0.0,
            checksum,
        },
        x,
    }
}

/// umesh on the DSM (base / optimized). Nodes are BLOCK-partitioned by
/// grid row (spatial locality); edges go to the owner of their first
/// endpoint; the force-style accumulation uses the owner-last pipeline.
pub fn run_tmk(
    cfg: &UmeshConfig,
    mesh: &Mesh,
    mode: TmkMode,
    seq_time: SimTime,
) -> (RunReport, Vec<f64>) {
    let n = cfg.n();
    let nprocs = cfg.nprocs;
    let part = block_partition(n, nprocs);

    // Per-processor edge sections (owner of endpoint `a`).
    let mut per_proc: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nprocs];
    for &(a, b) in &mesh.edges {
        per_proc[part.owner[a as usize]].push((a, b));
    }
    let cap_pp = per_proc.iter().map(Vec::len).max().unwrap() + 1;

    let cl = Cluster::new(DsmConfig {
        nprocs,
        page_size: cfg.page_size,
        cost: cfg.cost.clone(),
    });
    let x = cl.alloc::<f64>(n);
    let elist = cl.alloc::<i32>(2 * cap_pp * nprocs);

    let captured: Mutex<Option<(SimTime, u64, u64)>> = Mutex::new(None);
    let scan_secs: Mutex<Vec<f64>> = Mutex::new(vec![0.0; nprocs]);

    cl.run(|p| {
        let me = p.rank();
        let my = part.range_of(me);
        let my_edges = &per_proc[me];
        let my_start = me * cap_pp;
        let mut v = if mode == TmkMode::Optimized {
            Validator::incremental()
        } else {
            Validator::new()
        };
        let mut local = vec![0.0f64; n];

        // untimed init
        for i in my.clone() {
            p.write(&x, i, mesh.x0[i]);
        }
        for (k, &(a, b)) in my_edges.iter().enumerate() {
            let flat = 2 * (my_start + k);
            p.write(&elist, flat, a as i32 + 1);
            p.write(&elist, flat + 1, b as i32 + 1);
        }
        p.barrier();
        p.start_timed_region();
        p.reset_counters();

        for _sweep in 0..cfg.sweeps {
            if mode == TmkMode::Optimized && !my_edges.is_empty() {
                validate(
                    p,
                    &mut v,
                    &[Desc::Indirect {
                        data: RegionRef::of(&x),
                        ind: elist,
                        ind_dims: vec![2, cap_pp * nprocs],
                        section: Rsd::new(vec![
                            Dim::dense(1, 2),
                            Dim::dense(my_start as i64 + 1, (my_start + my_edges.len()) as i64),
                        ]),
                        access: AccessType::Read,
                        sched: 1,
                    }],
                );
            }
            for l in local.iter_mut() {
                *l = 0.0;
            }
            p.compute(work::t(work::ZERO_US, n));
            for k in 0..my_edges.len() {
                let flat = 2 * (my_start + k);
                let a = p.read(&elist, flat) as usize - 1;
                let b = p.read(&elist, flat + 1) as usize - 1;
                let flux = (p.read(&x, a) - p.read(&x, b)) * KAPPA;
                local[a] -= flux;
                local[b] += flux;
            }
            p.compute(work::t(EDGE_US, my_edges.len()));

            // owner-last pipelined update of x: x[i] += Σ local contributions
            for s in 0..p.nprocs() {
                let chunk = (me + s + 1) % p.nprocs();
                let cr = part.range_of(chunk);
                if mode == TmkMode::Optimized {
                    validate(
                        p,
                        &mut v,
                        &[Desc::Direct {
                            data: RegionRef::of(&x),
                            section: Rsd::dense1(cr.start as i64 + 1, cr.end as i64),
                            access: AccessType::ReadWriteAll,
                            sched: 100 + chunk as u32,
                        }],
                    );
                }
                for i in cr {
                    let cur = p.read(&x, i);
                    p.write(&x, i, cur + local[i]);
                }
                p.barrier();
            }
        }

        if me == 0 {
            let rep = cl.report();
            *captured.lock() = Some((cl.elapsed(), rep.messages, rep.bytes));
        }
        scan_secs.lock()[me] = v.scan_seconds();
        p.barrier();
    });

    let final_x: Mutex<Vec<f64>> = Mutex::new(vec![0.0; n]);
    cl.run(|p| {
        if p.rank() == 0 {
            let mut out = final_x.lock();
            for i in 0..n {
                out[i] = p.read(&x, i);
            }
        }
    });
    let final_x = final_x.into_inner();
    let (time, messages, bytes) = captured.into_inner().expect("captured");
    let checksum = final_x.iter().map(|v| v.abs()).sum();
    let scan = scan_secs.into_inner();
    (
        RunReport {
            system: match mode {
                TmkMode::Base => SystemKind::TmkBase,
                TmkMode::Optimized => SystemKind::TmkOpt,
            },
            time,
            seq_time,
            messages,
            bytes,
            inspector_s: 0.0,
            untimed_inspector_s: 0.0,
            validate_scan_s: scan.iter().sum::<f64>() / nprocs as f64,
            checksum,
        },
        final_x,
    )
}

/// umesh under CHAOS: inspector once (static mesh), gather endpoint
/// values, accumulate, scatter contributions.
pub fn run_chaos(cfg: &UmeshConfig, mesh: &Mesh, seq_time: SimTime) -> (RunReport, Vec<f64>) {
    let n = cfg.n();
    let nprocs = cfg.nprocs;
    let part = block_partition(n, nprocs);
    let tt = TTable::new(TTableKind::Replicated, &part);
    let mut per_proc: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nprocs];
    for &(a, b) in &mesh.edges {
        per_proc[part.owner[a as usize]].push((a, b));
    }

    let w = ChaosWorld::new(nprocs, cfg.cost.clone());
    let captured: Mutex<Option<(SimTime, u64, u64)>> = Mutex::new(None);
    let insp: Mutex<Vec<f64>> = Mutex::new(vec![0.0; nprocs]);
    let finals: Mutex<Vec<(usize, Vec<f64>)>> = Mutex::new(Vec::new());

    w.run(|cp| {
        let me = cp.rank();
        let my = part.range_of(me);
        let my_edges = &per_proc[me];
        let mut cache = TTableCache::new();
        let mut x_own: Vec<f64> = mesh.x0[my.clone()].to_vec();

        let t0 = cp.now();
        let sched = inspector(
            cp,
            &tt,
            &mut cache,
            my_edges.iter().flat_map(|&(a, b)| [a, b]),
        );
        insp.lock()[me] = (cp.now() - t0).as_secs_f64();
        let locs: Vec<(chaos::Loc, chaos::Loc)> = my_edges
            .iter()
            .map(|&(a, b)| {
                let (oa, fa) = tt.translate_free(a);
                let (ob, fb) = tt.translate_free(b);
                (sched.locate(me, oa, fa), sched.locate(me, ob, fb))
            })
            .collect();

        cp.start_timed_region();
        for _ in 0..cfg.sweeps {
            let mut xg = Ghosted::new(x_own.clone(), &sched);
            gather(cp, &sched, &mut xg);
            let mut ag = Ghosted::new(vec![0.0; my.len()], &sched);
            for (k, _) in my_edges.iter().enumerate() {
                let (la, lb) = locs[k];
                let flux = (xg.get(la) - xg.get(lb)) * KAPPA;
                ag.add(la, -flux);
                ag.add(lb, flux);
            }
            cp.compute(work::t(EDGE_US, my_edges.len()) + work::t(work::ZERO_US, my.len()));
            scatter_add(cp, &sched, &mut ag);
            for (l, xi) in x_own.iter_mut().enumerate() {
                *xi += ag.owned[l];
            }
            cp.sync();
        }
        if me == 0 {
            let rep = cp.net().report();
            *captured.lock() = Some((cp.net().clock_max(), rep.messages, rep.bytes));
        }
        finals.lock().push((me, x_own));
    });

    let mut final_x = vec![0.0f64; n];
    for (me, block) in finals.into_inner() {
        final_x[part.range_of(me)].copy_from_slice(&block);
    }
    let (time, messages, bytes) = captured.into_inner().expect("captured");
    let checksum = final_x.iter().map(|v| v.abs()).sum();
    (
        RunReport {
            system: SystemKind::Chaos,
            time,
            seq_time,
            messages,
            bytes,
            inspector_s: 0.0,
            untimed_inspector_s: insp.into_inner().iter().sum::<f64>() / nprocs as f64,
            validate_scan_s: 0.0,
            checksum,
        },
        final_x,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_generation_structure() {
        let cfg = UmeshConfig::small();
        let m = gen_mesh(&cfg);
        assert_eq!(m.x0.len(), 1024);
        // Grid edges: 2·side·(side-1) = 1984, plus some long-range.
        assert!(m.edges.len() >= 1984);
        for &(a, b) in &m.edges {
            assert!(a < b, "edges normalized");
            assert!((b as usize) < cfg.n());
        }
        // Deterministic.
        assert_eq!(gen_mesh(&cfg).edges, m.edges);
    }

    #[test]
    fn all_variants_agree() {
        let cfg = UmeshConfig::small();
        let mesh = gen_mesh(&cfg);
        let seq = run_seq(&cfg, &mesh);
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 + 1e-10 * b.abs();
        let (base, xb) = run_tmk(&cfg, &mesh, TmkMode::Base, seq.report.time);
        let (opt, xo) = run_tmk(&cfg, &mesh, TmkMode::Optimized, seq.report.time);
        let (chaos, xc) = run_chaos(&cfg, &mesh, seq.report.time);
        for (label, x) in [("base", &xb), ("opt", &xo), ("chaos", &xc)] {
            for (g, w) in x.iter().zip(&seq.x) {
                assert!(close(*g, *w), "{label}: {g} vs {w}");
            }
        }
        // At this tiny scale communication dominates compute (a page
        // fetch costs more than a whole sweep's work), so we assert the
        // protocol shape rather than absolute speedups.
        assert!(opt.messages < base.messages);
        assert!(opt.time < base.time);
        assert!(chaos.messages < base.messages);
    }

    #[test]
    fn static_mesh_schedule_computed_once() {
        let cfg = UmeshConfig::small();
        let mesh = gen_mesh(&cfg);
        let seq = run_seq(&cfg, &mesh);
        let (rep, _) = run_tmk(&cfg, &mesh, TmkMode::Optimized, seq.report.time);
        // The edge list never changes: one Read_indices pass total, so
        // the per-processor scan time is tiny relative to the sweep work.
        assert!(rep.validate_scan_s < seq.report.time.as_secs_f64() / 10.0);
    }

    #[test]
    fn relaxation_converges() {
        // Diffusion must shrink the value spread monotonically-ish.
        let mut cfg = UmeshConfig::small();
        cfg.sweeps = 30;
        let mesh = gen_mesh(&cfg);
        let seq = run_seq(&cfg, &mesh);
        let spread = |v: &[f64]| {
            let mx = v.iter().cloned().fold(f64::MIN, f64::max);
            let mn = v.iter().cloned().fold(f64::MAX, f64::min);
            mx - mn
        };
        assert!(spread(&seq.x) < spread(&mesh.x0) * 0.9);
    }
}
