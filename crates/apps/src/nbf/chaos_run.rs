//! nbf on CHAOS — the `CHAOS` row of Table 2.
//!
//! "In the CHAOS program, the inspector is called at the beginning of the
//! program, outside the loop simulating the time steps. At the start of
//! each time step, a gather is called to collect the updated values of
//! coordinates from remote processors. A scatter is invoked at the end of
//! each time step to propagate the modifications to the force array."

use parking_lot::Mutex;
use simnet::SimTime;

use chaos::{
    block_partition, gather, inspector, scatter_add, ChaosWorld, Ghosted, TTable, TTableCache,
    TTableKind,
};

use super::{nbf_force, NbfConfig, NbfWorld, DT};
use crate::report::{RunReport, SystemKind};
use crate::work;

/// Run nbf under CHAOS. Returns the Table-2 row and final coordinates.
pub fn run_chaos(
    cfg: &NbfConfig,
    world: &NbfWorld,
    seq_time: SimTime,
) -> (RunReport, Vec<f64>) {
    let nprocs = cfg.nprocs;
    let n = cfg.n;
    let part = block_partition(n, nprocs);
    // 84% of the molecules interact (paper §5.2) — remapping buys little,
    // and BLOCK makes translation trivial; the replicated table fits.
    let tt = TTable::new(TTableKind::Replicated, &part);

    let w = ChaosWorld::new(nprocs, cfg.cost.clone());
    let cap = crate::harness::Capture::new(nprocs);
    let finals: Mutex<Vec<(usize, Vec<f64>)>> = Mutex::new(Vec::new());

    w.run(|cp| {
        let me = cp.rank();
        let my = part.range_of(me);
        let mut cache = TTableCache::new();

        let mut x_own: Vec<f64> = world.x0[my.clone()].to_vec();
        let nloc = x_own.len();
        let (klo, khi) = (world.last[my.start] as usize, world.last[my.end] as usize);

        // --- untimed: the inspector, once, outside the time-step loop ---
        let t0 = cp.now();
        let sched = inspector(
            cp,
            &tt,
            &mut cache,
            world.partners[klo..khi].iter().map(|&j| j as u32 - 1),
        );
        cap.set_untimed_inspector(me, (cp.now() - t0).as_secs_f64());

        // Pre-resolve each partner reference.
        let locs: Vec<chaos::Loc> = world.partners[klo..khi]
            .iter()
            .map(|&j| {
                let (o, off) = tt.translate_free(j as u32 - 1);
                sched.locate(me, o, off)
            })
            .collect();

        for step in 1..=(cfg.warmup + cfg.steps) {
            if step == cfg.warmup + 1 {
                cp.start_timed_region();
            }

            // gather updated coordinates
            let mut xg = Ghosted::new(x_own.clone(), &sched);
            gather(cp, &sched, &mut xg);

            // accumulate forces (owned + ghost contributions)
            let mut fg = Ghosted::new(vec![0.0; nloc], &sched);
            let mut pairs = 0usize;
            for (li, i) in my.clone().enumerate() {
                let xi = xg.owned[li];
                let (lo, hi) = (world.last[i] as usize, world.last[i + 1] as usize);
                for k in lo..hi {
                    let loc = locs[k - klo];
                    let xj = xg.get(loc);
                    let f = nbf_force(xi, xj);
                    fg.owned[li] += f;
                    fg.add(loc, -f);
                }
                pairs += hi - lo;
            }
            cp.compute(work::t(work::ZERO_US, nloc) + work::t(work::NBF_PAIR_US, pairs));

            // scatter force contributions back to the owners
            scatter_add(cp, &sched, &mut fg);

            // owner integrates
            for (li, xi) in x_own.iter_mut().enumerate() {
                *xi += DT * fg.owned[li];
            }
            cp.compute(work::t(work::NBF_UPDATE_US, nloc));
            cp.sync();
        }

        cap.freeze_chaos(cp);
        finals.lock().push((me, x_own));
    });

    let mut final_x = vec![0.0f64; n];
    for (me, block) in finals.into_inner() {
        let r = part.range_of(me);
        final_x[r].copy_from_slice(&block);
    }

    let checksum = final_x.iter().map(|v| v.abs()).sum();
    (
        cap.report(SystemKind::Chaos, seq_time, checksum, None),
        final_x,
    )
}
