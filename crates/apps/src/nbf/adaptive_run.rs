//! nbf under the runtime-adaptive engine — the fourth system variant.
//!
//! nbf is the engine's best case: the partner list is *static*, so the
//! set of coordinate pages each processor reads through it never
//! changes. After `promote_after` steps the whole remote read set is
//! promoted and every step's page-at-a-time demand traffic collapses
//! into one exchange per peer — the same shape `Validate` reaches, but
//! learned instead of compiled. (This is the paper's §5.2 workload
//! whose indirection even a compiler can handle; the point of the
//! adaptive build is that *nothing* about the source was needed.)

use simnet::SimTime;

use super::tmk::run_tmk;
use super::{NbfConfig, NbfWorld, TmkMode};
use crate::report::RunReport;

/// nbf's adaptive knobs: the pattern is perfectly stable, so the
/// defaults are right; a longer probe cadence would also be safe.
pub fn knobs() -> adapt::AdaptConfig {
    adapt::AdaptConfig::default()
}

pub(super) fn policy(mode: TmkMode) -> Box<dyn adapt::ProtocolPolicy> {
    let mut k = knobs();
    k.push = mode == TmkMode::Push;
    Box::new(adapt::AdaptivePolicy::new(k))
}

/// Run nbf under the adaptive engine. Returns the table row (with
/// [`RunReport::policy`] filled) and the final coordinates.
pub fn run_adaptive(
    cfg: &NbfConfig,
    world: &NbfWorld,
    seq_time: SimTime,
) -> (RunReport, Vec<f64>) {
    run_tmk(cfg, world, TmkMode::Adaptive, seq_time)
}

/// Run nbf with the adaptive engine in update-push mode.
pub fn run_push(cfg: &NbfConfig, world: &NbfWorld, seq_time: SimTime) -> (RunReport, Vec<f64>) {
    run_tmk(cfg, world, TmkMode::Push, seq_time)
}

#[cfg(test)]
mod tests {
    use super::super::{gen_world, run_seq};
    use super::*;

    #[test]
    fn adaptive_is_bitwise_identical_to_base_and_cuts_messages() {
        let cfg = NbfConfig::small();
        let world = gen_world(&cfg);
        let seq = run_seq(&cfg, &world);
        let (base, xb) = run_tmk(&cfg, &world, TmkMode::Base, seq.report.time);
        let (ad, xa) = run_adaptive(&cfg, &world, seq.report.time);
        assert_eq!(xa, xb, "adaptive must be bitwise identical to base");
        assert!(
            ad.messages < base.messages,
            "adaptive {} !< base {}",
            ad.messages,
            base.messages
        );
        assert!(ad.time < base.time);
        let pol = ad.policy.expect("policy report");
        assert!(pol.promotions > 0);
        assert!(pol.prefetch_pages > 0);
        assert_eq!(
            pol.demotions, 0,
            "a static partner list never dissolves the pattern"
        );
    }

    #[test]
    fn one_processor_never_prefetches() {
        let mut cfg = NbfConfig::small();
        cfg.nprocs = 1;
        let world = gen_world(&cfg);
        let seq = run_seq(&cfg, &world);
        let (rep, _) = run_adaptive(&cfg, &world, seq.report.time);
        assert_eq!(rep.messages, 0);
        let pol = rep.policy.expect("policy report");
        assert_eq!(pol.prefetch_rounds, 0, "nothing is ever invalidated");
    }
}
