//! nbf — the GROMOS non-bonded-force kernel (paper §5.2, Table 2).
//!
//! "Instead of keeping a list of pairs of interacting molecules like
//! moldyn, nbf keeps a list of interacting partners for each molecule.
//! The lists of partners are concatenated together, with a per molecule
//! list pointing to the end of each molecule's partners in the partner
//! list." The partner list is *static*; each molecule has ~100 partners
//! spread evenly over about 2/3 of the total space, so "a simple BLOCK
//! partition suffices to balance the load."

mod adaptive_run;
mod chaos_run;
mod seq;
mod tmk;

pub use adaptive_run::{knobs as adaptive_knobs, run_adaptive, run_push};
pub use chaos_run::run_chaos;
pub use seq::run_seq;
pub use tmk::run_tmk;

use simnet::CostModel;

pub use super::moldyn::TmkMode;

/// Integration step size (keeps values bounded over the 10 paper steps).
pub const DT: f64 = 0.01;

/// Configuration of one nbf experiment.
#[derive(Debug, Clone)]
pub struct NbfConfig {
    /// Number of molecules. Paper: 64×1024 = 65536, 64×1000 = 64000
    /// (the partition/page misalignment case), 32×1024 = 32768.
    pub n: usize,
    /// Partners per molecule (paper: 100).
    pub partners: usize,
    /// Timed steps (paper: "the test runs for 11 iterations, of which
    /// the last 10 iterations are timed").
    pub steps: usize,
    /// Untimed warm-up steps before the timed region (paper: 1).
    pub warmup: usize,
    pub nprocs: usize,
    pub seed: u64,
    pub page_size: usize,
    pub cost: CostModel,
}

impl NbfConfig {
    /// A paper Table-2 configuration (`n` ∈ {65536, 64000, 32768}).
    pub fn paper(n: usize) -> Self {
        NbfConfig {
            n,
            partners: 100,
            steps: 10,
            warmup: 1,
            nprocs: 8,
            seed: 1234,
            page_size: 4096,
            cost: CostModel::default(),
        }
    }

    /// Laptop-scale test configuration.
    pub fn small() -> Self {
        NbfConfig {
            n: 1024,
            partners: 12,
            steps: 3,
            warmup: 1,
            nprocs: 4,
            seed: 5,
            page_size: 1024,
            cost: CostModel::default(),
        }
    }
}

/// The generated workload: initial values and the partner structure.
#[derive(Debug, Clone)]
pub struct NbfWorld {
    /// Initial coordinate of each molecule ("Each molecule is
    /// represented by a double precision floating point number").
    pub x0: Vec<f64>,
    /// Concatenated partner lists, 1-based molecule ids (Fortran-style).
    pub partners: Vec<i32>,
    /// `last[i]` = end offset (exclusive, 0-based) of molecule i-1's
    /// partners; `last[0] = 0` — the paper's per-molecule end-pointer
    /// array, with the conventional 0 sentinel.
    pub last: Vec<i32>,
}

/// Build the partner structure: molecule `i`'s k-th partner is
/// `(i + (k+1)·stride) mod n` with `stride ≈ 2n/(3·partners)` — partners
/// spread evenly over about 2/3 of the space, matching §5.2 ("the
/// partners of each molecule spread evenly in about 2/3 of the total
/// space"; "the distance between two adjacent partners of a molecule is
/// about 4% molecules" holds at the paper's 16-molecule-per-page scale).
pub fn gen_world(cfg: &NbfConfig) -> NbfWorld {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let n = cfg.n;
    let stride = (2 * n / (3 * cfg.partners)).max(1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut partners = Vec::with_capacity(n * cfg.partners);
    let mut last = Vec::with_capacity(n + 1);
    last.push(0);
    for i in 0..n {
        for k in 0..cfg.partners {
            let j = (i + (k + 1) * stride) % n;
            partners.push(j as i32 + 1); // 1-based
        }
        last.push(partners.len() as i32);
    }
    NbfWorld { x0, partners, last }
}

/// The pair kernel, identical in every build: a bounded deterministic
/// stand-in for the GROMOS non-bonded force.
#[inline]
pub fn nbf_force(xi: f64, xj: f64) -> f64 {
    (xi - xj) * 1e-4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_structure() {
        let cfg = NbfConfig::small();
        let w = gen_world(&cfg);
        assert_eq!(w.partners.len(), cfg.n * cfg.partners);
        assert_eq!(w.last.len(), cfg.n + 1);
        assert_eq!(w.last[0], 0);
        assert_eq!(*w.last.last().unwrap() as usize, w.partners.len());
        // Every molecule's list has exactly `partners` entries.
        for i in 0..cfg.n {
            assert_eq!(w.last[i + 1] - w.last[i], cfg.partners as i32);
        }
        // Partner ids are valid and 1-based.
        assert!(w.partners.iter().all(|&p| p >= 1 && p <= cfg.n as i32));
    }

    #[test]
    fn partners_span_two_thirds() {
        let cfg = NbfConfig::paper(65536);
        let w = gen_world(&cfg);
        // Molecule 0's farthest partner ≈ 2n/3 away.
        let far = w.partners[..cfg.partners]
            .iter()
            .map(|&p| p as usize - 1)
            .max()
            .unwrap();
        let frac = far as f64 / cfg.n as f64;
        assert!((0.55..0.75).contains(&frac), "{frac}");
    }

    #[test]
    fn generation_deterministic() {
        let cfg = NbfConfig::small();
        assert_eq!(gen_world(&cfg).x0, gen_world(&cfg).x0);
    }
}
