//! Sequential nbf reference.

use simnet::SimTime;

use super::{nbf_force, NbfConfig, NbfWorld, DT};
use crate::report::{RunReport, SystemKind};
use crate::work;

pub struct SeqResult {
    pub report: RunReport,
    pub x: Vec<f64>,
}

/// Run nbf sequentially. Warm-up steps run but are not timed, exactly
/// like the paper's "last 10 of 11 iterations are timed".
pub fn run_seq(cfg: &NbfConfig, world: &NbfWorld) -> SeqResult {
    let mut x = world.x0.clone();
    let mut forces = vec![0.0f64; cfg.n];
    let mut time = SimTime::ZERO;

    for step in 1..=(cfg.warmup + cfg.steps) {
        let timed = step > cfg.warmup;
        forces.iter_mut().for_each(|f| *f = 0.0);
        for i in 0..cfg.n {
            let (lo, hi) = (world.last[i] as usize, world.last[i + 1] as usize);
            for k in lo..hi {
                let j = world.partners[k] as usize - 1;
                let f = nbf_force(x[i], x[j]);
                forces[i] += f;
                forces[j] -= f;
            }
        }
        for i in 0..cfg.n {
            x[i] += DT * forces[i];
        }
        if timed {
            time += work::t(work::ZERO_US, cfg.n)
                + work::t(work::NBF_PAIR_US, world.partners.len())
                + work::t(work::NBF_UPDATE_US, cfg.n);
        }
    }

    let checksum = x.iter().map(|v| v.abs()).sum();
    SeqResult {
        report: RunReport {
            system: SystemKind::Sequential,
            time,
            seq_time: time,
            messages: 0,
            bytes: 0,
            inspector_s: 0.0,
            untimed_inspector_s: 0.0,
            validate_scan_s: 0.0,
            checksum,
            policy: None,
            net: None,
        },
        x,
    }
}

#[cfg(test)]
mod tests {
    use super::super::gen_world;
    use super::*;

    #[test]
    fn deterministic_and_moving() {
        let cfg = NbfConfig::small();
        let w = gen_world(&cfg);
        let a = run_seq(&cfg, &w);
        let b = run_seq(&cfg, &w);
        assert_eq!(a.x, b.x);
        let moved = a.x.iter().zip(&w.x0).filter(|(p, q)| p != q).count();
        assert!(moved > cfg.n / 2);
    }

    #[test]
    fn paper_scale_time_formula() {
        // 64×1024: 10 × 6.55M pairs × 1.19 µs ≈ 78 s (paper: 78.3 s) —
        // verified on the formula, not by running the full size.
        let t = work::t(work::NBF_PAIR_US, 65536 * 100 * 10);
        assert!((70.0..90.0).contains(&t.as_secs_f64()));
    }
}
