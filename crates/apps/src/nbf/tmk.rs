//! nbf on the DSM (base and optimized) — the `Tmk` rows of Table 2.
//!
//! BLOCK partition; the static partner list is written once during
//! initialization. Each timed step: `Validate` (optimized) prefetches
//! the coordinate pages named by the partner section, forces accumulate
//! into a private array, the shared force array is updated in the
//! pipelined owner-last fashion, and owners integrate their coordinates.
//!
//! Because the paper's 64×1000 size makes the per-processor blocks
//! misaligned with pages, the boundary pages of `x` and `forces` are
//! written by two processors — the false-sharing overhead §5.2.1
//! measures falls out of the protocol here with no special handling.

use parking_lot::Mutex;
use rsd::{Dim, Env, Rsd};
use sdsm_core::{validate, AccessType, Cluster, Desc, DsmConfig, RegionRef, Validator};
use simnet::SimTime;

use chaos::block_partition;

use super::{nbf_force, NbfConfig, NbfWorld, TmkMode, DT};
use crate::report::RunReport;
use crate::work;

/// Run nbf on the simulated DSM. Returns the Table-2 row and the final
/// coordinates.
pub fn run_tmk(
    cfg: &NbfConfig,
    world: &NbfWorld,
    mode: TmkMode,
    seq_time: SimTime,
) -> (RunReport, Vec<f64>) {
    let nprocs = cfg.nprocs;
    let n = cfg.n;
    let part = block_partition(n, nprocs);

    // Compile the nbf source; the optimized build uses its INDIRECT site.
    let compiled = fcc::compile(fcc::fixtures::NBF_SOURCE).expect("nbf source compiles");
    let site = compiled
        .sites
        .iter()
        .find(|s| s.unit == "computenbfforces")
        .expect("nbf Validate site")
        .clone();
    let ind_desc = site
        .descriptors
        .iter()
        .find(|d| d.ind.as_deref() == Some("partners"))
        .expect("partners INDIRECT descriptor")
        .clone();

    let cl = Cluster::new(DsmConfig {
        nprocs,
        page_size: cfg.page_size,
        cost: cfg.cost.clone(),
    });
    let x = cl.alloc::<f64>(n);
    let forces = cl.alloc::<f64>(n);
    let partners = cl.alloc::<i32>(world.partners.len());
    let last = cl.alloc::<i32>(n + 1);

    let cap = crate::harness::Capture::new(nprocs);

    cl.run(|p| {
        if mode.is_adaptive() {
            p.set_policy(super::adaptive_run::policy(mode));
        }
        let me = p.rank();
        let my = part.range_of(me);
        let mut v = Validator::new();
        let mut local = vec![0.0f64; n];

        // --- untimed init: owner writes its block of x, partner list ---
        for i in my.clone() {
            p.write(&x, i, world.x0[i]);
        }
        let (klo, khi) = (
            world.last[my.start] as usize,
            world.last[my.end] as usize,
        );
        for k in klo..khi {
            p.write(&partners, k, world.partners[k]);
        }
        for i in my.start..=my.end {
            p.write(&last, i, world.last[i]);
        }
        // First invalidation of the coordinate pages — same site as the
        // per-step owner-integrate barrier, so that phase's event axis
        // starts here (the partner/last pages it also invalidates are
        // never written again, so their attribution is moot).
        p.barrier_tagged(crate::phases::UPDATE);

        for step in 1..=(cfg.warmup + cfg.steps) {
            if step == cfg.warmup + 1 {
                p.start_timed_region();
                p.reset_counters();
            }

            // ---- ComputeNbfForces ----
            if mode == TmkMode::Optimized {
                // Bind the compiler's section: the opaque bound symbols
                // `last(0)` and `last(num_molecules)` become this
                // processor's partner-list extent (its molecules' lists).
                let env = Env::new()
                    .bind("last(0)", klo as i64)
                    .bind("last(num_molecules)", khi as i64);
                let sec = ind_desc.section.eval(&env).expect("bound section");
                validate(
                    p,
                    &mut v,
                    &[
                        Desc::Indirect {
                            data: RegionRef::of(&x),
                            ind: partners,
                            ind_dims: vec![partners.len()],
                            section: sec,
                            access: AccessType::Read,
                            sched: 1,
                        },
                        // The direct reads of x(i) and last(i) over my
                        // block (the site's DIRECT descriptors, bound to
                        // my range).
                        Desc::Direct {
                            data: RegionRef::of(&x),
                            section: Rsd::dense1(my.start as i64 + 1, my.end as i64),
                            access: AccessType::Read,
                            sched: 2,
                        },
                        Desc::Direct {
                            data: RegionRef::of(&last),
                            section: Rsd::dense1(my.start as i64 + 1, my.end as i64 + 1),
                            access: AccessType::Read,
                            sched: 3,
                        },
                    ],
                );
            }
            for l in local.iter_mut() {
                *l = 0.0;
            }
            p.compute(work::t(work::ZERO_US, n));
            let mut pairs = 0usize;
            for i in my.clone() {
                let lo = p.read(&last, i) as usize;
                let hi = p.read(&last, i + 1) as usize;
                let xi = p.read(&x, i);
                for k in lo..hi {
                    let j = p.read(&partners, k) as usize - 1;
                    let xj = p.read(&x, j);
                    let f = nbf_force(xi, xj);
                    local[i] += f;
                    local[j] -= f;
                }
                pairs += hi - lo;
            }
            p.compute(work::t(work::NBF_PAIR_US, pairs));

            // ---- pipelined reduction, owner last ----
            for s in 0..p.nprocs() {
                let chunk = (me + s + 1) % p.nprocs();
                let cr = part.range_of(chunk);
                if mode == TmkMode::Optimized {
                    let access = if s == 0 {
                        AccessType::WriteAll
                    } else {
                        AccessType::ReadWriteAll
                    };
                    validate(
                        p,
                        &mut v,
                        &[Desc::Direct {
                            data: RegionRef::of(&forces),
                            section: Rsd::new(vec![Dim::dense(
                                cr.start as i64 + 1,
                                cr.end as i64,
                            )]),
                            access,
                            sched: 100 + chunk as u32,
                        }],
                    );
                }
                if s == 0 {
                    for i in cr {
                        p.write(&forces, i, local[i]);
                    }
                } else {
                    for i in cr {
                        let cur = p.read(&forces, i);
                        p.write(&forces, i, cur + local[i]);
                    }
                }
                // Per-round phase tag: each reduction round is its own
                // barrier site (crate::phases), so the adaptive engine
                // keeps one chunk plan per round.
                p.barrier_tagged(crate::phases::PIPELINE + s as u32);
            }

            // ---- owner integrates ----
            if mode == TmkMode::Optimized {
                validate(
                    p,
                    &mut v,
                    &[Desc::Direct {
                        data: RegionRef::of(&x),
                        section: Rsd::dense1(my.start as i64 + 1, my.end as i64),
                        access: AccessType::ReadWriteAll,
                        sched: 200,
                    }],
                );
            }
            for i in my.clone() {
                let f = p.read(&forces, i);
                let cur = p.read(&x, i);
                p.write(&x, i, cur + DT * f);
            }
            p.compute(work::t(work::NBF_UPDATE_US, my.len()));
            p.barrier_tagged(crate::phases::UPDATE);
        }

        cap.freeze_tmk(me, &cl);
        cap.set_scan(me, v.scan_seconds());
        p.barrier();
    });

    let policy = mode.is_adaptive().then(|| cl.net().policy_report());

    // Untimed extraction.
    let final_x: Mutex<Vec<f64>> = Mutex::new(vec![0.0; n]);
    cl.run(|p| {
        if p.rank() == 0 {
            let mut out = final_x.lock();
            for i in 0..n {
                out[i] = p.read(&x, i);
            }
        }
    });
    let final_x = final_x.into_inner();

    let checksum = final_x.iter().map(|v| v.abs()).sum();
    (
        cap.report(mode.system_kind(), seq_time, checksum, policy),
        final_x,
    )
}
