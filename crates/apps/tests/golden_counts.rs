//! Golden message/byte counts of the three classic applications at test
//! scale, asserted **through the `Workload` trait harness**. The numbers
//! were captured from the pre-refactor per-app harnesses (PR 2 state);
//! the trait runner must reproduce them exactly — the refactor moved
//! report bookkeeping only, never protocol behavior. The simulation is
//! deterministic, so these are equalities, not tolerances.
//!
//! PR 4 added the update-push variant (`TmkPush`): the same adaptive
//! predictor with each predicted exchange a single one-way writer push
//! instead of a request/reply pair, so its rows sit strictly below the
//! pull-mode adaptive rows on both messages and bytes. The four
//! pre-existing variants' numbers were *not* shifted by PR 4 at this
//! scale (the gap-history predictor reduces to the one-gap predictor on
//! these patterns, and the quiesce streak is too short to engage).
//!
//! If a *protocol* change legitimately shifts these numbers, update the
//! table below in the same commit and say why in its message.

use apps::moldyn::MoldynConfig;
use apps::nbf::NbfConfig;
use apps::umesh::UmeshConfig;
use apps::workload::{run_matrix, MoldynWorkload, NbfWorkload, UmeshWorkload, Variant, Workload};

/// `(variant, messages, bytes)` — the four classic rows captured from
/// the direct per-app calls before the `Workload` refactor, plus the
/// update-push row captured when the variant was introduced (PR 4).
type Golden = [(Variant, u64, u64); 5];

fn assert_golden(w: &dyn Workload, golden: &Golden) {
    let m = run_matrix(w);
    for &(v, messages, bytes) in golden {
        let r = &m.get(v).report;
        assert_eq!(
            (r.messages, r.bytes),
            (messages, bytes),
            "{} {:?}: pre-refactor counts not reproduced",
            m.label,
            v
        );
    }
}

#[test]
fn moldyn_small_reproduces_pre_refactor_counts() {
    assert_golden(
        &MoldynWorkload::new(MoldynConfig::small()),
        &[
            (Variant::TmkBase, 1250, 617_796),
            (Variant::TmkOpt, 414, 338_596),
            (Variant::TmkAdaptive, 990, 713_104),
            (Variant::TmkPush, 849, 707_600),
            (Variant::Chaos, 180, 167_120),
        ],
    );
}

#[test]
fn nbf_small_reproduces_pre_refactor_counts() {
    assert_golden(
        &NbfWorkload::new(NbfConfig::small()),
        &[
            (Variant::TmkBase, 624, 326_016),
            (Variant::TmkOpt, 240, 150_816),
            (Variant::TmkAdaptive, 576, 394_944),
            (Variant::TmkPush, 504, 392_304),
            (Variant::Chaos, 96, 129_216),
        ],
    );
}

#[test]
fn umesh_small_reproduces_pre_refactor_counts() {
    assert_golden(
        &UmeshWorkload::new(UmeshConfig::small()),
        &[
            (Variant::TmkBase, 218, 101_536),
            (Variant::TmkOpt, 134, 100_576),
            (Variant::TmkAdaptive, 218, 126_592),
            (Variant::TmkPush, 194, 125_824),
            (Variant::Chaos, 78, 11_344),
        ],
    );
}
