//! Golden message/byte counts of the three classic applications at test
//! scale, asserted **through the `Workload` trait harness**. The numbers
//! were captured from the pre-refactor per-app harnesses (PR 2 state);
//! the trait runner must reproduce them exactly — the refactor moved
//! report bookkeeping only, never protocol behavior. The simulation is
//! deterministic, so these are equalities, not tolerances.
//!
//! If a *protocol* change legitimately shifts these numbers, update the
//! table below in the same commit and say why in its message.

use apps::moldyn::MoldynConfig;
use apps::nbf::NbfConfig;
use apps::umesh::UmeshConfig;
use apps::workload::{run_matrix, MoldynWorkload, NbfWorkload, UmeshWorkload, Variant, Workload};

/// `(variant, messages, bytes)` captured from the direct per-app calls
/// before the `Workload` refactor.
type Golden = [(Variant, u64, u64); 4];

fn assert_golden(w: &dyn Workload, golden: &Golden) {
    let m = run_matrix(w);
    for &(v, messages, bytes) in golden {
        let r = &m.get(v).report;
        assert_eq!(
            (r.messages, r.bytes),
            (messages, bytes),
            "{} {:?}: pre-refactor counts not reproduced",
            m.label,
            v
        );
    }
}

#[test]
fn moldyn_small_reproduces_pre_refactor_counts() {
    assert_golden(
        &MoldynWorkload::new(MoldynConfig::small()),
        &[
            (Variant::TmkBase, 1250, 617_796),
            (Variant::TmkOpt, 414, 338_596),
            (Variant::TmkAdaptive, 990, 713_104),
            (Variant::Chaos, 180, 167_120),
        ],
    );
}

#[test]
fn nbf_small_reproduces_pre_refactor_counts() {
    assert_golden(
        &NbfWorkload::new(NbfConfig::small()),
        &[
            (Variant::TmkBase, 624, 326_016),
            (Variant::TmkOpt, 240, 150_816),
            (Variant::TmkAdaptive, 576, 394_944),
            (Variant::Chaos, 96, 129_216),
        ],
    );
}

#[test]
fn umesh_small_reproduces_pre_refactor_counts() {
    assert_golden(
        &UmeshWorkload::new(UmeshConfig::small()),
        &[
            (Variant::TmkBase, 218, 101_536),
            (Variant::TmkOpt, 134, 100_576),
            (Variant::TmkAdaptive, 218, 126_592),
            (Variant::Chaos, 78, 11_344),
        ],
    );
}
