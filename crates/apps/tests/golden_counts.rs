//! Golden message/byte counts of the three classic applications at test
//! scale, asserted **through the `Workload` trait harness**. The numbers
//! were captured from the pre-refactor per-app harnesses (PR 2 state);
//! the trait runner must reproduce them exactly — the refactor moved
//! report bookkeeping only, never protocol behavior. The simulation is
//! deterministic, so these are equalities, not tolerances.
//!
//! PR 4 added the update-push variant (`TmkPush`): the same adaptive
//! predictor with each predicted exchange a single one-way writer push
//! instead of a request/reply pair, so its rows sit strictly below the
//! pull-mode adaptive rows on both messages and bytes.
//!
//! PR 5 keyed the adaptive engine by **barrier phase** and added the
//! explicit **push-subscription cost model**, which legitimately shifts
//! exactly the `TmkAdaptive` and `TmkPush` rows (the protocol layers
//! with a policy in the loop) and nothing else:
//!
//! * `TmkAdaptive`: per-(page, phase) event axes move a handful of
//!   learning-transient predictions at this tiny scale (moldyn
//!   990 → 974: the phase-clean axes predict slightly better across its
//!   rebuilds; nbf 576 → 580: the 4-step run ends inside the learning
//!   transient, one exchange lands differently; umesh is single-phase
//!   and stays exactly 218). The quiesce streak (the phase-keyed win)
//!   needs more epochs than these configs run — the quick-scale
//!   `table_adapt` asserts it fires there.
//! * `TmkPush`: same prediction shifts, plus the one-way `AdaptSub`
//!   subscription messages that PR 4 modeled as free riding (umesh
//!   194 → 206 is exactly its 12 subscription messages; moldyn and nbf
//!   add their prediction shifts on top).
//!
//! PR 6 flattened the O(nprocs) metadata layers (sparse delta clocks on
//! the wire, the flat barrier notice digest, page-indexed stores) for
//! 64–256-processor runs. At these 4/8-processor scales every clock
//! still travels in the dense encoding — billed exactly as before by
//! construction — so **every row here stays byte-identical**; the
//! sparse regime is covered by the `nprocs ∈ {16, 64}` properties in
//! `synth/tests/properties.rs` and the `table_synth` scale cells.
//!
//! PR 9 opened the churn axis (mid-run regime breaks, partition
//! rebalances, lossy links) and the expected stance here is **no row
//! changes at all** — asserted first, before anything churn-specific:
//! the break detector's [`adapt::AdaptConfig::demote_after`] defaults
//! to 1, which by construction reproduces the previous
//! first-clean-probe demotion exactly (tolerated clean probes only
//! exist at ≥ 2); the loss model is opt-in per run via
//! `simnet::with_loss` and no app harness opts in; and the rebalance
//! machinery only engages on `Dynamics::Rebalance` scenarios, which no
//! classic app uses. A diff in any row below means one of those
//! defaults leaked into the steady-state path.
//!
//! If a *protocol* change legitimately shifts these numbers, update the
//! table below in the same commit and say why in its message.

use apps::moldyn::MoldynConfig;
use apps::nbf::NbfConfig;
use apps::umesh::UmeshConfig;
use apps::workload::{run_matrix, MoldynWorkload, NbfWorkload, UmeshWorkload, Variant, Workload};

/// `(variant, messages, bytes)` — the four classic rows captured from
/// the direct per-app calls before the `Workload` refactor, plus the
/// update-push row captured when the variant was introduced (PR 4).
type Golden = [(Variant, u64, u64); 5];

fn assert_golden(w: &dyn Workload, golden: &Golden) {
    let m = run_matrix(w);
    for &(v, messages, bytes) in golden {
        let r = &m.get(v).report;
        assert_eq!(
            (r.messages, r.bytes),
            (messages, bytes),
            "{} {:?}: pre-refactor counts not reproduced",
            m.label,
            v
        );
    }
}

#[test]
fn moldyn_small_reproduces_pre_refactor_counts() {
    assert_golden(
        &MoldynWorkload::new(MoldynConfig::small()),
        &[
            (Variant::TmkBase, 1250, 617_796),
            (Variant::TmkOpt, 414, 338_596),
            (Variant::TmkAdaptive, 974, 655_284),
            (Variant::TmkPush, 930, 704_048),
            (Variant::Chaos, 180, 167_120),
        ],
    );
}

#[test]
fn nbf_small_reproduces_pre_refactor_counts() {
    assert_golden(
        &NbfWorkload::new(NbfConfig::small()),
        &[
            (Variant::TmkBase, 624, 326_016),
            (Variant::TmkOpt, 240, 150_816),
            (Variant::TmkAdaptive, 580, 389_696),
            (Variant::TmkPush, 568, 388_600),
            (Variant::Chaos, 96, 129_216),
        ],
    );
}

#[test]
fn umesh_small_reproduces_pre_refactor_counts() {
    assert_golden(
        &UmeshWorkload::new(UmeshConfig::small()),
        &[
            (Variant::TmkBase, 218, 101_536),
            (Variant::TmkOpt, 134, 100_576),
            (Variant::TmkAdaptive, 218, 126_592),
            (Variant::TmkPush, 206, 126_112),
            (Variant::Chaos, 78, 11_344),
        ],
    );
}
