//! Cross-variant verification: all builds of each application must
//! compute the same physics — to floating-point reordering tolerance
//! against the sequential reference (whose accumulation order the
//! pipelined reduction reassociates), and **bitwise** among the DSM
//! builds (base / optimized / adaptive run the same program; the
//! protocol layers only move data earlier or later). The protocol-level
//! shape of the paper's comparison must hold even at test scale:
//! aggregation cuts messages, demand paging inflates them.

use apps::moldyn::{self, MoldynConfig, TmkMode};
use apps::nbf::{self, NbfConfig};
use apps::umesh::{self, UmeshConfig};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 + 1e-9 * a.abs().max(b.abs())
}

fn assert_positions_match(label: &str, got: &[[f64; 3]], want: &[[f64; 3]]) {
    let mut worst = 0.0f64;
    for (g, w) in got.iter().zip(want) {
        for d in 0..3 {
            worst = worst.max((g[d] - w[d]).abs());
            assert!(
                close(g[d], w[d]),
                "{label}: position diverged: {} vs {} (worst {worst:e})",
                g[d],
                w[d]
            );
        }
    }
}

#[test]
fn moldyn_all_variants_agree_with_sequential() {
    let cfg = MoldynConfig::small();
    let world = moldyn::gen_positions(&cfg);
    let seq = moldyn::run_seq(&cfg, &world);

    let (rep_base, x_base) = moldyn::run_tmk(&cfg, &world, TmkMode::Base, seq.report.time);
    assert_positions_match("tmk-base", &x_base, &seq.x);

    let (rep_opt, x_opt) = moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    assert_positions_match("tmk-opt", &x_opt, &seq.x);

    let (rep_chaos, x_chaos) = moldyn::run_chaos(&cfg, &world, seq.report.time);
    assert_positions_match("chaos", &x_chaos, &seq.x);

    // Paper shape: aggregation cuts DSM messages well below demand paging.
    assert!(
        rep_opt.messages < rep_base.messages,
        "opt {} !< base {}",
        rep_opt.messages,
        rep_base.messages
    );
    // CHAOS schedule-driven transfers use few messages.
    assert!(rep_chaos.messages < rep_base.messages);
    // The optimized build is the fastest DSM build.
    assert!(rep_opt.time < rep_base.time);
    // Everyone actually communicated.
    assert!(rep_base.messages > 0 && rep_chaos.messages > 0);
}

#[test]
fn nbf_all_variants_agree_with_sequential() {
    let cfg = NbfConfig::small();
    let world = nbf::gen_world(&cfg);
    let seq = nbf::run_seq(&cfg, &world);

    let (rep_base, x_base) = nbf::run_tmk(&cfg, &world, TmkMode::Base, seq.report.time);
    let (rep_opt, x_opt) = nbf::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    let (rep_chaos, x_chaos) = nbf::run_chaos(&cfg, &world, seq.report.time);

    for (label, got) in [("base", &x_base), ("opt", &x_opt), ("chaos", &x_chaos)] {
        for (g, w) in got.iter().zip(&seq.x) {
            assert!(close(*g, *w), "nbf-{label}: {g} vs {w}");
        }
    }

    assert!(rep_opt.messages < rep_base.messages);
    assert!(rep_opt.time < rep_base.time);
    assert!(rep_chaos.messages < rep_base.messages);
}

#[test]
fn moldyn_adaptive_agrees_bitwise_and_cuts_messages() {
    let cfg = MoldynConfig::small();
    let world = moldyn::gen_positions(&cfg);
    let seq = moldyn::run_seq(&cfg, &world);

    let (rep_base, x_base) = moldyn::run_tmk(&cfg, &world, TmkMode::Base, seq.report.time);
    let (rep_opt, x_opt) = moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    let (rep_ad, x_ad) = moldyn::run_adaptive(&cfg, &world, seq.report.time);

    // The adaptive engine only moves fetches to the barrier; every DSM
    // build computes in the identical order, so agreement across them
    // is bitwise — and still within tolerance of the sequential
    // reference like every other build.
    assert_eq!(x_ad, x_base, "adaptive must be bitwise identical to Tmk base");
    assert_eq!(x_ad, x_opt, "adaptive must be bitwise identical to Tmk optimized");
    assert_positions_match("tmk-adaptive", &x_ad, &seq.x);

    // The learned aggregation must pay off, and must never cost more
    // than demand paging.
    assert!(
        rep_ad.messages < rep_base.messages,
        "adaptive {} !< base {}",
        rep_ad.messages,
        rep_base.messages
    );
    assert!(rep_ad.time < rep_base.time);
    let pol = rep_ad.policy.as_ref().expect("adaptive policy report");
    assert!(pol.promotions > 0 && pol.prefetch_rounds > 0);
    // The compiler path still knows more than the runtime can learn.
    assert!(rep_opt.messages <= rep_ad.messages);
}

#[test]
fn nbf_adaptive_agrees_bitwise_and_cuts_messages() {
    let cfg = NbfConfig::small();
    let world = nbf::gen_world(&cfg);
    let seq = nbf::run_seq(&cfg, &world);

    let (rep_base, x_base) = nbf::run_tmk(&cfg, &world, TmkMode::Base, seq.report.time);
    let (_rep_opt, x_opt) = nbf::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    let (rep_ad, x_ad) = nbf::run_adaptive(&cfg, &world, seq.report.time);

    assert_eq!(x_ad, x_base, "adaptive must be bitwise identical to Tmk base");
    assert_eq!(x_ad, x_opt, "adaptive must be bitwise identical to Tmk optimized");
    for (g, w) in x_ad.iter().zip(&seq.x) {
        assert!(close(*g, *w), "nbf-adaptive: {g} vs {w}");
    }

    assert!(rep_ad.messages < rep_base.messages);
    assert!(rep_ad.time < rep_base.time);
    let pol = rep_ad.policy.as_ref().expect("adaptive policy report");
    assert!(pol.promotions > 0);
    assert_eq!(pol.demotions, 0, "a static partner list never demotes");
}

#[test]
fn umesh_adaptive_agrees_bitwise_with_sequential() {
    // With the fixed-order owner-side reduction, umesh's contract is
    // the strongest: the adaptive build is bitwise-equal to the
    // sequential program itself, not just to the other DSM builds.
    let cfg = UmeshConfig::small();
    let mesh = umesh::gen_mesh(&cfg);
    let seq = umesh::run_seq(&cfg, &mesh);
    let (rep_base, x_base) = umesh::run_tmk(&cfg, &mesh, TmkMode::Base, seq.report.time);
    let (rep_ad, x_ad) = umesh::run_adaptive(&cfg, &mesh, seq.report.time);
    assert_eq!(x_ad, seq.x, "adaptive must be bitwise identical to seq");
    assert_eq!(x_ad, x_base);
    assert!(rep_ad.messages <= rep_base.messages);
}

#[test]
fn adaptive_never_sends_more_than_base_on_any_app() {
    // The ISSUE-level guarantee, at test scale, across all three apps.
    let mcfg = MoldynConfig::small();
    let mworld = moldyn::gen_positions(&mcfg);
    let mseq = moldyn::run_seq(&mcfg, &mworld);
    let (mb, _) = moldyn::run_tmk(&mcfg, &mworld, TmkMode::Base, mseq.report.time);
    let (ma, _) = moldyn::run_adaptive(&mcfg, &mworld, mseq.report.time);
    assert!(ma.messages <= mb.messages, "moldyn: {} > {}", ma.messages, mb.messages);

    let ncfg = NbfConfig::small();
    let nworld = nbf::gen_world(&ncfg);
    let nseq = nbf::run_seq(&ncfg, &nworld);
    let (nb, _) = nbf::run_tmk(&ncfg, &nworld, TmkMode::Base, nseq.report.time);
    let (na, _) = nbf::run_adaptive(&ncfg, &nworld, nseq.report.time);
    assert!(na.messages <= nb.messages, "nbf: {} > {}", na.messages, nb.messages);

    let ucfg = UmeshConfig::small();
    let umesh_mesh = umesh::gen_mesh(&ucfg);
    let useq = umesh::run_seq(&ucfg, &umesh_mesh);
    let (ub, _) = umesh::run_tmk(&ucfg, &umesh_mesh, TmkMode::Base, useq.report.time);
    let (ua, _) = umesh::run_adaptive(&ucfg, &umesh_mesh, useq.report.time);
    assert!(ua.messages <= ub.messages, "umesh: {} > {}", ua.messages, ub.messages);
}

#[test]
fn moldyn_results_deterministic_across_runs() {
    let cfg = MoldynConfig::small();
    let world = moldyn::gen_positions(&cfg);
    let seq = moldyn::run_seq(&cfg, &world);
    let (r1, x1) = moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    let (r2, x2) = moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    assert_eq!(x1, x2, "bitwise-identical results");
    assert_eq!(r1.messages, r2.messages);
    assert_eq!(r1.bytes, r2.bytes);
    assert_eq!(r1.time, r2.time);
}

#[test]
fn nbf_deterministic_across_runs() {
    let cfg = NbfConfig::small();
    let world = nbf::gen_world(&cfg);
    let seq = nbf::run_seq(&cfg, &world);
    let (r1, x1) = nbf::run_chaos(&cfg, &world, seq.report.time);
    let (r2, x2) = nbf::run_chaos(&cfg, &world, seq.report.time);
    assert_eq!(x1, x2);
    assert_eq!((r1.messages, r1.bytes, r1.time), (r2.messages, r2.bytes, r2.time));
}

#[test]
fn moldyn_update_frequency_hurts_chaos_more() {
    // The paper's headline: as the list changes more often, the DSM
    // approach gains on CHAOS because the inspector re-runs (in the
    // timed region) while Validate merely rescans.
    let world = moldyn::gen_positions(&MoldynConfig::small());
    let mut rare = MoldynConfig::small();
    rare.update_interval = 5; // 1 rebuild over 6 steps
    let mut often = MoldynConfig::small();
    often.update_interval = 2; // 2 rebuilds

    let seq_rare = moldyn::run_seq(&rare, &world);
    let seq_often = moldyn::run_seq(&often, &world);

    let (c_rare, _) = moldyn::run_chaos(&rare, &world, seq_rare.report.time);
    let (c_often, _) = moldyn::run_chaos(&often, &world, seq_often.report.time);
    let (o_rare, _) = moldyn::run_tmk(&rare, &world, TmkMode::Optimized, seq_rare.report.time);
    let (o_often, _) = moldyn::run_tmk(&often, &world, TmkMode::Optimized, seq_often.report.time);

    // CHAOS pays the inspector inside the loop; Validate pays a rescan.
    assert!(c_often.inspector_s > c_rare.inspector_s);
    let chaos_delta = c_often.time.as_secs_f64() - c_rare.time.as_secs_f64();
    let opt_delta = o_often.time.as_secs_f64() - o_rare.time.as_secs_f64();
    assert!(
        chaos_delta > opt_delta,
        "chaos Δ {chaos_delta} must exceed opt Δ {opt_delta}"
    );
}

#[test]
fn nbf_one_processor_matches_sequential_closely() {
    // Paper §5: "The single-processor TreadMarks execution time is almost
    // identical to that of the sequential program."
    let mut cfg = NbfConfig::small();
    cfg.nprocs = 1;
    let world = nbf::gen_world(&cfg);
    let seq = nbf::run_seq(&cfg, &world);
    let (rep, x) = nbf::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    for (g, w) in x.iter().zip(&seq.x) {
        assert!(close(*g, *w));
    }
    assert_eq!(rep.messages, 0, "one processor never communicates");
    let ratio = rep.time.as_secs_f64() / seq.report.time.as_secs_f64();
    assert!(
        (0.95..1.15).contains(&ratio),
        "1-proc DSM ≈ sequential, ratio {ratio}"
    );
}

#[test]
fn validate_scan_time_is_reported() {
    let cfg = MoldynConfig::small();
    let world = moldyn::gen_positions(&cfg);
    let seq = moldyn::run_seq(&cfg, &world);
    let (rep, _) = moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    assert!(rep.validate_scan_s > 0.0);
    let (rep_c, _) = moldyn::run_chaos(&cfg, &world, seq.report.time);
    assert!(rep_c.untimed_inspector_s > 0.0);
    // The paper's asymmetry: inspector work dwarfs the Validate scan.
    assert!(rep_c.untimed_inspector_s + rep_c.inspector_s > rep.validate_scan_s);
}
