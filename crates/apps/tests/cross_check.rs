//! Cross-variant verification: all four builds of each application must
//! compute the same physics (to floating-point reordering tolerance),
//! and the protocol-level shape of the paper's comparison must hold even
//! at test scale: aggregation cuts messages, demand paging inflates them.

use apps::moldyn::{self, MoldynConfig, TmkMode};
use apps::nbf::{self, NbfConfig};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 + 1e-9 * a.abs().max(b.abs())
}

fn assert_positions_match(label: &str, got: &[[f64; 3]], want: &[[f64; 3]]) {
    let mut worst = 0.0f64;
    for (g, w) in got.iter().zip(want) {
        for d in 0..3 {
            worst = worst.max((g[d] - w[d]).abs());
            assert!(
                close(g[d], w[d]),
                "{label}: position diverged: {} vs {} (worst {worst:e})",
                g[d],
                w[d]
            );
        }
    }
}

#[test]
fn moldyn_all_variants_agree_with_sequential() {
    let cfg = MoldynConfig::small();
    let world = moldyn::gen_positions(&cfg);
    let seq = moldyn::run_seq(&cfg, &world);

    let (rep_base, x_base) = moldyn::run_tmk(&cfg, &world, TmkMode::Base, seq.report.time);
    assert_positions_match("tmk-base", &x_base, &seq.x);

    let (rep_opt, x_opt) = moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    assert_positions_match("tmk-opt", &x_opt, &seq.x);

    let (rep_chaos, x_chaos) = moldyn::run_chaos(&cfg, &world, seq.report.time);
    assert_positions_match("chaos", &x_chaos, &seq.x);

    // Paper shape: aggregation cuts DSM messages well below demand paging.
    assert!(
        rep_opt.messages < rep_base.messages,
        "opt {} !< base {}",
        rep_opt.messages,
        rep_base.messages
    );
    // CHAOS schedule-driven transfers use few messages.
    assert!(rep_chaos.messages < rep_base.messages);
    // The optimized build is the fastest DSM build.
    assert!(rep_opt.time < rep_base.time);
    // Everyone actually communicated.
    assert!(rep_base.messages > 0 && rep_chaos.messages > 0);
}

#[test]
fn nbf_all_variants_agree_with_sequential() {
    let cfg = NbfConfig::small();
    let world = nbf::gen_world(&cfg);
    let seq = nbf::run_seq(&cfg, &world);

    let (rep_base, x_base) = nbf::run_tmk(&cfg, &world, TmkMode::Base, seq.report.time);
    let (rep_opt, x_opt) = nbf::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    let (rep_chaos, x_chaos) = nbf::run_chaos(&cfg, &world, seq.report.time);

    for (label, got) in [("base", &x_base), ("opt", &x_opt), ("chaos", &x_chaos)] {
        for (g, w) in got.iter().zip(&seq.x) {
            assert!(close(*g, *w), "nbf-{label}: {g} vs {w}");
        }
    }

    assert!(rep_opt.messages < rep_base.messages);
    assert!(rep_opt.time < rep_base.time);
    assert!(rep_chaos.messages < rep_base.messages);
}

#[test]
fn moldyn_results_deterministic_across_runs() {
    let cfg = MoldynConfig::small();
    let world = moldyn::gen_positions(&cfg);
    let seq = moldyn::run_seq(&cfg, &world);
    let (r1, x1) = moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    let (r2, x2) = moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    assert_eq!(x1, x2, "bitwise-identical results");
    assert_eq!(r1.messages, r2.messages);
    assert_eq!(r1.bytes, r2.bytes);
    assert_eq!(r1.time, r2.time);
}

#[test]
fn nbf_deterministic_across_runs() {
    let cfg = NbfConfig::small();
    let world = nbf::gen_world(&cfg);
    let seq = nbf::run_seq(&cfg, &world);
    let (r1, x1) = nbf::run_chaos(&cfg, &world, seq.report.time);
    let (r2, x2) = nbf::run_chaos(&cfg, &world, seq.report.time);
    assert_eq!(x1, x2);
    assert_eq!((r1.messages, r1.bytes, r1.time), (r2.messages, r2.bytes, r2.time));
}

#[test]
fn moldyn_update_frequency_hurts_chaos_more() {
    // The paper's headline: as the list changes more often, the DSM
    // approach gains on CHAOS because the inspector re-runs (in the
    // timed region) while Validate merely rescans.
    let world = moldyn::gen_positions(&MoldynConfig::small());
    let mut rare = MoldynConfig::small();
    rare.update_interval = 5; // 1 rebuild over 6 steps
    let mut often = MoldynConfig::small();
    often.update_interval = 2; // 2 rebuilds

    let seq_rare = moldyn::run_seq(&rare, &world);
    let seq_often = moldyn::run_seq(&often, &world);

    let (c_rare, _) = moldyn::run_chaos(&rare, &world, seq_rare.report.time);
    let (c_often, _) = moldyn::run_chaos(&often, &world, seq_often.report.time);
    let (o_rare, _) = moldyn::run_tmk(&rare, &world, TmkMode::Optimized, seq_rare.report.time);
    let (o_often, _) = moldyn::run_tmk(&often, &world, TmkMode::Optimized, seq_often.report.time);

    // CHAOS pays the inspector inside the loop; Validate pays a rescan.
    assert!(c_often.inspector_s > c_rare.inspector_s);
    let chaos_delta = c_often.time.as_secs_f64() - c_rare.time.as_secs_f64();
    let opt_delta = o_often.time.as_secs_f64() - o_rare.time.as_secs_f64();
    assert!(
        chaos_delta > opt_delta,
        "chaos Δ {chaos_delta} must exceed opt Δ {opt_delta}"
    );
}

#[test]
fn nbf_one_processor_matches_sequential_closely() {
    // Paper §5: "The single-processor TreadMarks execution time is almost
    // identical to that of the sequential program."
    let mut cfg = NbfConfig::small();
    cfg.nprocs = 1;
    let world = nbf::gen_world(&cfg);
    let seq = nbf::run_seq(&cfg, &world);
    let (rep, x) = nbf::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    for (g, w) in x.iter().zip(&seq.x) {
        assert!(close(*g, *w));
    }
    assert_eq!(rep.messages, 0, "one processor never communicates");
    let ratio = rep.time.as_secs_f64() / seq.report.time.as_secs_f64();
    assert!(
        (0.95..1.15).contains(&ratio),
        "1-proc DSM ≈ sequential, ratio {ratio}"
    );
}

#[test]
fn validate_scan_time_is_reported() {
    let cfg = MoldynConfig::small();
    let world = moldyn::gen_positions(&cfg);
    let seq = moldyn::run_seq(&cfg, &world);
    let (rep, _) = moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    assert!(rep.validate_scan_s > 0.0);
    let (rep_c, _) = moldyn::run_chaos(&cfg, &world, seq.report.time);
    assert!(rep_c.untimed_inspector_s > 0.0);
    // The paper's asymmetry: inspector work dwarfs the Validate scan.
    assert!(rep_c.untimed_inspector_s + rep_c.inspector_s > rep.validate_scan_s);
}
