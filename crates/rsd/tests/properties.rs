//! Property-based tests for the regular-section algebra — the foundation
//! both the compiler's analysis and `Validate`'s page computation rest on.

use proptest::prelude::*;
use rsd::{pages_of_bytes, pages_of_section, Affine, Dim, Env, PageSet, Rsd, SymDim, SymRsd};

fn dim_strategy() -> impl Strategy<Value = Dim> {
    (-100i64..100, 0i64..200, 1i64..12)
        .prop_map(|(lo, len, stride)| Dim::new(lo, lo + len, stride))
}

proptest! {
    #[test]
    fn dim_len_matches_iteration(d in dim_strategy()) {
        prop_assert_eq!(d.len(), d.iter().count());
        if let Some(last) = d.last() {
            prop_assert!(d.contains(last));
            prop_assert!(last <= d.hi);
        }
    }

    #[test]
    fn dim_contains_iff_iterated(d in dim_strategy(), v in -150i64..350) {
        let by_iter = d.iter().any(|x| x == v);
        prop_assert_eq!(d.contains(v), by_iter);
    }

    #[test]
    fn intersection_is_exact(a in dim_strategy(), b in dim_strategy()) {
        let i = a.intersect(&b);
        // Soundness: everything in the intersection is in both.
        for v in i.iter() {
            prop_assert!(a.contains(v) && b.contains(v), "{v} not in both");
        }
        // Completeness: everything in both is in the intersection.
        for v in a.iter() {
            if b.contains(v) {
                prop_assert!(i.contains(v), "{v} missing from intersection");
            }
        }
    }

    #[test]
    fn intersection_commutes(a in dim_strategy(), b in dim_strategy()) {
        let ab: Vec<i64> = a.intersect(&b).iter().collect();
        let ba: Vec<i64> = b.intersect(&a).iter().collect();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn hull_contains_both(a in dim_strategy(), b in dim_strategy()) {
        let h = a.hull(&b);
        for v in a.iter().chain(b.iter()) {
            prop_assert!(h.contains(v));
        }
    }

    #[test]
    fn rsd_product_len(dims in proptest::collection::vec(dim_strategy(), 1..4)) {
        let r = Rsd::new(dims);
        prop_assert_eq!(r.len(), r.iter_points().count());
        for p in r.iter_points().take(50) {
            prop_assert!(r.contains(&p));
        }
    }

    #[test]
    fn pages_of_section_covers_every_element(
        base_pages in 0usize..4,
        lo in 0i64..500,
        len in 0i64..300,
        stride in 1i64..20,
        elem in prop::sample::select(vec![4usize, 8, 16, 24]),
    ) {
        let page = 256usize;
        let base = base_pages * page;
        let hi = lo + len;
        let set = pages_of_section(base, elem, lo, hi, stride, page);
        // Every element's bytes are inside pages of the set.
        let mut i = lo;
        while i <= hi {
            let b = base + i as usize * elem;
            for pg in pages_of_bytes(b, elem, page) {
                prop_assert!(set.contains(pg), "elem {i} page {pg} missing");
            }
            i += stride;
        }
        // No page in the set is untouched by any element.
        for pg in set.iter() {
            let ps = pg as usize * page;
            let pe = ps + page;
            let mut touched = false;
            let mut i = lo;
            while i <= hi {
                let b = base + i as usize * elem;
                if b < pe && b + elem > ps {
                    touched = true;
                    break;
                }
                i += stride;
            }
            prop_assert!(touched, "page {pg} in set but untouched");
        }
    }

    #[test]
    fn pageset_equals_btreeset(pages in proptest::collection::vec(0u32..500, 0..200)) {
        let mut ps = PageSet::new();
        for &p in &pages {
            ps.insert(p);
        }
        ps.finish();
        let reference: std::collections::BTreeSet<u32> = pages.iter().copied().collect();
        prop_assert_eq!(ps.iter().collect::<Vec<_>>(),
                        reference.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn pageset_union_is_set_union(
        a in proptest::collection::vec(0u32..300, 0..100),
        b in proptest::collection::vec(0u32..300, 0..100),
    ) {
        let pa: PageSet = a.iter().copied().collect();
        let pb: PageSet = b.iter().copied().collect();
        let u = pa.union(&pb);
        let reference: std::collections::BTreeSet<u32> =
            a.into_iter().chain(b).collect();
        prop_assert_eq!(u.iter().collect::<Vec<_>>(),
                        reference.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn affine_eval_is_linear(c0 in -50i64..50, c1 in -50i64..50, x in -100i64..100, y in -100i64..100) {
        // (c0·a + c1·b)(x, y) == c0·x + c1·y
        let e = Affine::sym("a").scale(c0).add(&Affine::sym("b").scale(c1));
        let env = Env::new().bind("a", x).bind("b", y);
        prop_assert_eq!(e.eval(&env), Some(c0 * x + c1 * y));
    }

    #[test]
    fn sym_rsd_eval_matches_concrete(lo in 0i64..50, len in 0i64..50, stride in 1i64..5, bind in 0i64..100) {
        let sym = SymRsd::new(vec![SymDim {
            lo: Affine::constant(lo),
            hi: Affine::sym("n").offset(len),
            stride,
        }]);
        let env = Env::new().bind("n", bind);
        let conc = sym.eval(&env).unwrap();
        prop_assert_eq!(conc.dims[0], Dim::new(lo, bind + len, stride));
    }
}

proptest! {
    /// `PageSet` canonicalization is a pure function of the insert
    /// stream: the result is bitwise-identical at any thread allowance
    /// (sharded bitmap fill, parallel sort path) and equals the
    /// `BTreeSet` oracle. `reps`/`wide` steer the stream across the
    /// planner's regimes — compact bitmap, sparse sort, and (at 800
    /// repetitions) past the sharded-fill threshold.
    #[test]
    fn pageset_build_is_thread_count_invariant(
        base in proptest::collection::vec(0u32..5_000, 1..200),
        reps in prop::sample::select(vec![1usize, 1, 2, 800]),
        wide in prop::sample::select(vec![false, true]),
    ) {
        let stream: Vec<u32> = std::iter::repeat_n(&base, reps)
            .flatten()
            .map(|&p| if wide { p.wrapping_mul(50_000) } else { p })
            .collect();
        let build = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                let mut s = PageSet::new();
                for &p in &stream {
                    s.insert(p);
                }
                s.finish();
                s
            })
        };
        let seq = build(1);
        for threads in [4usize, 64] {
            prop_assert_eq!(seq.as_slice(), build(threads).as_slice());
        }
        let oracle: Vec<u32> = stream
            .iter()
            .copied()
            .collect::<std::collections::BTreeSet<u32>>()
            .into_iter()
            .collect();
        prop_assert_eq!(seq.as_slice(), &oracle[..]);
    }
}
