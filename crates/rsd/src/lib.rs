//! # rsd — Regular Section Descriptors
//!
//! The paper's entire compile-time requirement is *regular section
//! analysis* (Havlak & Kennedy): array accesses in a loop nest are
//! summarized as per-dimension `lo : hi : stride` triplets. The compiler
//! (`fcc`) computes *symbolic* sections — affine expressions over loop
//! bounds and program parameters — and the run-time (`sdsm-core`)
//! evaluates them to *concrete* sections that drive `Validate`:
//!
//! * a `DIRECT` descriptor's section *is* the accessed part of shared data;
//! * an `INDIRECT` descriptor's section describes the slice of the
//!   indirection array a processor traverses (usually `lo:hi:1`), from
//!   which `Read_indices` computes the actual page set.
//!
//! This crate has no dependency on the DSM; it is pure index algebra plus
//! the page arithmetic both runtimes need.

mod concrete;
mod pages;
mod sym;

pub use concrete::{Dim, Rsd};
pub use pages::{pages_of_bytes, pages_of_section, PageSet};
pub use sym::{Affine, Env, Sym, SymDim, SymRsd};
