//! Page arithmetic: mapping element sections and index sets onto the
//! page-granular consistency units of the DSM.
//!
//! `Validate` ultimately works in pages: a `DIRECT` descriptor's section
//! expands to the pages its bytes occupy; an `INDIRECT` descriptor's page
//! set is built by `Read_indices` folding each indirection target into a
//! [`PageSet`].

/// An ordered, duplicate-free set of page numbers.
///
/// Page sets in this system are small (hundreds of pages) and are built
/// once per schedule, then iterated many times — a sorted `Vec` beats a
/// hash set for both footprint and iteration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PageSet {
    pages: Vec<u32>,
    sorted: bool,
}

impl PageSet {
    pub fn new() -> Self {
        PageSet {
            pages: Vec::new(),
            sorted: true,
        }
    }

    pub fn with_capacity(n: usize) -> Self {
        PageSet {
            pages: Vec::with_capacity(n),
            sorted: true,
        }
    }

    /// Insert a page; duplicates and disorder are tolerated until
    /// [`PageSet::finish`] (amortizes the common build-then-iterate flow).
    #[inline]
    pub fn insert(&mut self, page: u32) {
        if let Some(&last) = self.pages.last() {
            if last == page {
                return; // consecutive duplicate fast path (sequential scans)
            }
            if last > page {
                self.sorted = false;
            }
        }
        self.pages.push(page);
    }

    /// Sort + dedup. Must be called after the last `insert`.
    pub fn finish(&mut self) {
        if !self.sorted {
            self.pages.sort_unstable();
            self.sorted = true;
        }
        self.pages.dedup();
    }

    pub fn len(&self) -> usize {
        self.pages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.pages.iter().copied()
    }

    pub fn contains(&self, page: u32) -> bool {
        debug_assert!(self.sorted, "finish() before querying");
        self.pages.binary_search(&page).is_ok()
    }

    pub fn as_slice(&self) -> &[u32] {
        &self.pages
    }

    pub fn union(&self, other: &PageSet) -> PageSet {
        debug_assert!(self.sorted && other.sorted);
        let mut out = Vec::with_capacity(self.pages.len() + other.pages.len());
        let (mut i, mut j) = (0, 0);
        while i < self.pages.len() && j < other.pages.len() {
            use std::cmp::Ordering::*;
            match self.pages[i].cmp(&other.pages[j]) {
                Less => {
                    out.push(self.pages[i]);
                    i += 1;
                }
                Greater => {
                    out.push(other.pages[j]);
                    j += 1;
                }
                Equal => {
                    out.push(self.pages[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.pages[i..]);
        out.extend_from_slice(&other.pages[j..]);
        PageSet {
            pages: out,
            sorted: true,
        }
    }
}

impl FromIterator<u32> for PageSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut s = PageSet::new();
        for p in iter {
            s.insert(p);
        }
        s.finish();
        s
    }
}

/// Pages covered by the byte range `[base, base+len)`.
pub fn pages_of_bytes(base: usize, len: usize, page_size: usize) -> std::ops::Range<u32> {
    if len == 0 {
        return 0..0;
    }
    let first = (base / page_size) as u32;
    let last = ((base + len - 1) / page_size) as u32;
    first..last + 1
}

/// Pages touched by a 1-D element section over an array starting at byte
/// offset `base`, with `elem` bytes per element. `lo..=hi : stride` are
/// *zero-based element indices* (callers translate Fortran 1-based bounds).
pub fn pages_of_section(
    base: usize,
    elem: usize,
    lo: i64,
    hi: i64,
    stride: i64,
    page_size: usize,
) -> PageSet {
    let mut set = PageSet::new();
    if hi < lo {
        return set;
    }
    // Last element actually reached (hi need not lie on the stride grid).
    let last = lo + ((hi - lo) / stride) * stride;
    if stride == 1 || (stride as usize * elem) < page_size {
        // Dense enough that every page in the byte span is touched:
        // consecutive elements start < page_size apart, so every page
        // between the first and last element holds at least one.
        let start = base + lo as usize * elem;
        let end = base + last as usize * elem + elem;
        for p in pages_of_bytes(start, end - start, page_size) {
            set.insert(p);
        }
    } else {
        let mut i = lo;
        while i <= hi {
            let b = base + i as usize * elem;
            for p in pages_of_bytes(b, elem, page_size) {
                set.insert(p);
            }
            i += stride;
        }
    }
    set.finish();
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_to_pages() {
        assert_eq!(pages_of_bytes(0, 4096, 4096), 0..1);
        assert_eq!(pages_of_bytes(0, 4097, 4096), 0..2);
        assert_eq!(pages_of_bytes(4095, 2, 4096), 0..2);
        assert_eq!(pages_of_bytes(8192, 0, 4096), 0..0);
    }

    #[test]
    fn dense_section_pages() {
        // 1000 f64s starting at byte 100: bytes 100..8100 → pages 0..2
        let s = pages_of_section(100, 8, 0, 999, 1, 4096);
        assert_eq!(s.as_slice(), &[0, 1]);
    }

    #[test]
    fn strided_section_skips_pages() {
        // every 1024th f64 (8 KB apart) touches every other page
        let s = pages_of_section(0, 8, 0, 4096, 1024, 4096);
        assert_eq!(s.as_slice(), &[0, 2, 4, 6, 8]);
    }

    #[test]
    fn element_spanning_two_pages() {
        // a 16-byte element straddling a boundary contributes both pages
        let s = pages_of_section(4088, 16, 0, 0, 1, 4096);
        assert_eq!(s.as_slice(), &[0, 1]);
    }

    #[test]
    fn pageset_dedup_and_order() {
        let mut s = PageSet::new();
        for p in [5u32, 5, 3, 9, 3, 1] {
            s.insert(p);
        }
        s.finish();
        assert_eq!(s.as_slice(), &[1, 3, 5, 9]);
        assert!(s.contains(3));
        assert!(!s.contains(4));
    }

    #[test]
    fn pageset_union() {
        let a: PageSet = [1u32, 3, 5].into_iter().collect();
        let b: PageSet = [2u32, 3, 8].into_iter().collect();
        assert_eq!(a.union(&b).as_slice(), &[1, 2, 3, 5, 8]);
    }

    #[test]
    fn empty_section() {
        let s = pages_of_section(0, 8, 5, 4, 1, 4096);
        assert!(s.is_empty());
    }
}
