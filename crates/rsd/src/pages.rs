//! Page arithmetic: mapping element sections and index sets onto the
//! page-granular consistency units of the DSM.
//!
//! `Validate` ultimately works in pages: a `DIRECT` descriptor's section
//! expands to the pages its bytes occupy; an `INDIRECT` descriptor's page
//! set is built by `Read_indices` folding each indirection target into a
//! [`PageSet`].

use rayon::prelude::*;

/// An ordered, duplicate-free set of page numbers.
///
/// Page sets in this system are small (hundreds of pages) and are built
/// once per schedule, then iterated many times — a sorted `Vec` beats a
/// hash set for both footprint and iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageSet {
    pages: Vec<u32>,
    sorted: bool,
    /// Last inserted page as an `i64` (−1 = empty): keeps the insert
    /// fast path free of the `Option`/ordering branches a
    /// `pages.last()` check would need.
    last: i64,
}

impl Default for PageSet {
    fn default() -> Self {
        PageSet::new()
    }
}

impl PageSet {
    pub fn new() -> Self {
        PageSet {
            pages: Vec::new(),
            sorted: true,
            last: -1,
        }
    }

    pub fn with_capacity(n: usize) -> Self {
        PageSet {
            pages: Vec::with_capacity(n),
            sorted: true,
            last: -1,
        }
    }

    /// Insert a page; duplicates and disorder are tolerated until
    /// [`PageSet::finish`] (amortizes the common build-then-iterate flow).
    ///
    /// The hot path — tens of thousands of calls per indirection scan —
    /// carries a single, highly predictable conditional (the
    /// consecutive-duplicate skip). The −1 sentinel makes the empty
    /// case fall through it without an `Option` branch, and ordering is
    /// not tracked here at all: `finish()` recovers it with one
    /// early-exit `is_sorted` pass over the final buffer, so the
    /// per-insert comparison chain and the `sorted`-flag store (a
    /// measurable read-modify-write dependency) both disappear from the
    /// loop. The flag store survives only in debug builds, where it
    /// backs the query-before-`finish` assertions.
    #[inline]
    pub fn insert(&mut self, page: u32) {
        let p = page as i64;
        if p != self.last {
            self.pages.push(page);
            self.last = p;
            #[cfg(debug_assertions)]
            {
                self.sorted = false;
            }
        }
    }

    /// Canonicalize (sort + dedup). Must be called after the last
    /// `insert`.
    ///
    /// For the common case — many inserts over a compact page range
    /// (every indirection scan: data arrays span hundreds of pages,
    /// referenced tens of thousands of times) — this is a dense-bitmap
    /// radix pass: O(n + range/64) instead of O(n log n) comparison
    /// sorting, and dedup falls out of the bitmap for free. Sparse sets
    /// (range ≫ inserts, e.g. huge-stride sections) keep the sort path.
    /// Criterion `rsd/pageset_build_10k` (10k inserts over 700 pages):
    /// 105.8 µs sort-based → 31.8 µs bitmap (~10.6 → ~3.2 ns/insert,
    /// the remainder being the `insert` calls themselves).
    ///
    /// The bitmap/sort decision keys on the *distinct* count, not the
    /// insert count: a heavily-duplicated wide-range set (say two pages
    /// a megapage apart, referenced 100k times) used to satisfy
    /// `range <= 64 * inserts` and drain a multi-megabit bitmap for a
    /// handful of survivors. [`PageSet::estimate_distinct`] bounds the
    /// survivor count with a coarse occupancy probe first, and all
    /// threshold arithmetic saturates so a full-`u32` range cannot wrap
    /// on 32-bit hosts.
    pub fn finish(&mut self) {
        if !self.pages.is_sorted() {
            let (mut min, mut max) = (u32::MAX, 0u32);
            for &p in &self.pages {
                min = min.min(p);
                max = max.max(p);
            }
            let range = ((max - min) as usize).saturating_add(1);
            if bitmap_worthwhile(range, self.estimate_distinct(min, range)) {
                self.bitmap_canonicalize(min, range);
            } else {
                self.pages.par_sort_unstable();
                self.pages.dedup();
            }
        } else {
            self.pages.dedup();
        }
        self.sorted = true;
        self.last = self.pages.last().map_or(-1, |&p| p as i64);
    }

    /// Upper-bound the distinct count for the bitmap/sort decision.
    ///
    /// Compact ranges (bitmap ≤ 2 KiB) skip the probe — the insert
    /// count is bound enough there, and the probe would cost more than
    /// the worst-case drain it guards against. Wider ranges take one
    /// extra O(n) pass over a *coarse* bitmap (buckets of `1 << shift`
    /// pages, at most 2 KiB again): `occupied << shift` bounds the
    /// distinct count because a bucket holds at most `1 << shift`
    /// values, so a duplicate-heavy stream over a huge range is caught
    /// before `finish` commits to a huge fine-grained bitmap.
    fn estimate_distinct(&self, min: u32, range: usize) -> usize {
        const COARSE_BITS: usize = 16 * 1024;
        if range <= COARSE_BITS {
            return self.pages.len();
        }
        let mut shift = 1u32;
        while (range >> shift) >= COARSE_BITS {
            shift += 1;
        }
        let mut coarse = vec![0u64; ((range - 1) >> shift).div_ceil(64) + 1];
        for &p in &self.pages {
            let i = ((p - min) as usize) >> shift;
            coarse[i >> 6] |= 1 << (i & 63);
        }
        let occupied: usize = coarse.iter().map(|w| w.count_ones() as usize).sum();
        self.pages.len().min(occupied.saturating_mul(1 << shift))
    }

    /// The dense-bitmap radix pass of [`PageSet::finish`]: set one bit
    /// per insert, then drain set bits in ascending order.
    ///
    /// With a thread allowance above 1 and enough inserts, the fill is
    /// sharded: each chunk of the insert stream ORs into its own local
    /// bitmap on a scoped worker and the shards are OR-merged. A bitmap
    /// is insensitive to fill order and the drain walks words low to
    /// high, so the result is bitwise-identical to the sequential fill
    /// at any thread count.
    fn bitmap_canonicalize(&mut self, min: u32, range: usize) {
        const PAR_FILL_MIN: usize = 64 * 1024;
        let words = range.div_ceil(64);
        let threads = rayon::current_num_threads();
        let bits = if threads <= 1 || self.pages.len() < PAR_FILL_MIN {
            let mut bits = vec![0u64; words];
            for &p in &self.pages {
                let i = (p - min) as usize;
                bits[i >> 6] |= 1 << (i & 63);
            }
            bits
        } else {
            let chunk = self.pages.len().div_ceil(threads);
            let shards: Vec<Vec<u64>> = self
                .pages
                .par_chunks(chunk)
                .map(|c| {
                    let mut local = vec![0u64; words];
                    for &p in c {
                        let i = (p - min) as usize;
                        local[i >> 6] |= 1 << (i & 63);
                    }
                    local
                })
                .collect();
            let mut bits = vec![0u64; words];
            for shard in shards {
                for (b, s) in bits.iter_mut().zip(shard) {
                    *b |= s;
                }
            }
            bits
        };
        self.pages.clear();
        for (w, &word) in bits.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                self.pages.push(min + (w as u32) * 64 + word.trailing_zeros());
                word &= word - 1;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.pages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.pages.iter().copied()
    }

    pub fn contains(&self, page: u32) -> bool {
        debug_assert!(self.sorted, "finish() before querying");
        self.pages.binary_search(&page).is_ok()
    }

    pub fn as_slice(&self) -> &[u32] {
        &self.pages
    }

    pub fn union(&self, other: &PageSet) -> PageSet {
        debug_assert!(self.sorted && other.sorted);
        let mut out = Vec::with_capacity(self.pages.len() + other.pages.len());
        let (mut i, mut j) = (0, 0);
        while i < self.pages.len() && j < other.pages.len() {
            use std::cmp::Ordering::*;
            match self.pages[i].cmp(&other.pages[j]) {
                Less => {
                    out.push(self.pages[i]);
                    i += 1;
                }
                Greater => {
                    out.push(other.pages[j]);
                    j += 1;
                }
                Equal => {
                    out.push(self.pages[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.pages[i..]);
        out.extend_from_slice(&other.pages[j..]);
        PageSet {
            last: out.last().map_or(-1, |&p| p as i64),
            pages: out,
            sorted: true,
        }
    }
}

/// Bitmap pays off when the value range is at most 64 bits of bitmap
/// per *distinct* page — i.e. the drain touches no more words than a
/// comparison sort would touch elements. Saturating: `est_distinct` can
/// legitimately be huge and the product must not wrap on 32-bit hosts.
fn bitmap_worthwhile(range: usize, est_distinct: usize) -> bool {
    range <= 64usize.saturating_mul(est_distinct)
}

impl FromIterator<u32> for PageSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut s = PageSet::new();
        for p in iter {
            s.insert(p);
        }
        s.finish();
        s
    }
}

/// Pages covered by the byte range `[base, base+len)`.
pub fn pages_of_bytes(base: usize, len: usize, page_size: usize) -> std::ops::Range<u32> {
    if len == 0 {
        return 0..0;
    }
    let first = (base / page_size) as u32;
    let last = ((base + len - 1) / page_size) as u32;
    first..last + 1
}

/// Pages touched by a 1-D element section over an array starting at byte
/// offset `base`, with `elem` bytes per element. `lo..=hi : stride` are
/// *zero-based element indices* (callers translate Fortran 1-based bounds).
pub fn pages_of_section(
    base: usize,
    elem: usize,
    lo: i64,
    hi: i64,
    stride: i64,
    page_size: usize,
) -> PageSet {
    let mut set = PageSet::new();
    if hi < lo {
        return set;
    }
    // Last element actually reached (hi need not lie on the stride grid).
    let last = lo + ((hi - lo) / stride) * stride;
    if stride == 1 || (stride as usize * elem) < page_size {
        // Dense enough that every page in the byte span is touched:
        // consecutive elements start < page_size apart, so every page
        // between the first and last element holds at least one.
        let start = base + lo as usize * elem;
        let end = base + last as usize * elem + elem;
        for p in pages_of_bytes(start, end - start, page_size) {
            set.insert(p);
        }
    } else {
        let mut i = lo;
        while i <= hi {
            let b = base + i as usize * elem;
            for p in pages_of_bytes(b, elem, page_size) {
                set.insert(p);
            }
            i += stride;
        }
    }
    set.finish();
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_to_pages() {
        assert_eq!(pages_of_bytes(0, 4096, 4096), 0..1);
        assert_eq!(pages_of_bytes(0, 4097, 4096), 0..2);
        assert_eq!(pages_of_bytes(4095, 2, 4096), 0..2);
        assert_eq!(pages_of_bytes(8192, 0, 4096), 0..0);
    }

    #[test]
    fn dense_section_pages() {
        // 1000 f64s starting at byte 100: bytes 100..8100 → pages 0..2
        let s = pages_of_section(100, 8, 0, 999, 1, 4096);
        assert_eq!(s.as_slice(), &[0, 1]);
    }

    #[test]
    fn strided_section_skips_pages() {
        // every 1024th f64 (8 KB apart) touches every other page
        let s = pages_of_section(0, 8, 0, 4096, 1024, 4096);
        assert_eq!(s.as_slice(), &[0, 2, 4, 6, 8]);
    }

    #[test]
    fn element_spanning_two_pages() {
        // a 16-byte element straddling a boundary contributes both pages
        let s = pages_of_section(4088, 16, 0, 0, 1, 4096);
        assert_eq!(s.as_slice(), &[0, 1]);
    }

    #[test]
    fn pageset_dedup_and_order() {
        let mut s = PageSet::new();
        for p in [5u32, 5, 3, 9, 3, 1] {
            s.insert(p);
        }
        s.finish();
        assert_eq!(s.as_slice(), &[1, 3, 5, 9]);
        assert!(s.contains(3));
        assert!(!s.contains(4));
    }

    #[test]
    fn bitmap_and_sort_paths_agree() {
        // Compact range → bitmap path; huge stride → sort path. Both
        // must produce the identical canonical form.
        let mut compact = PageSet::new();
        let mut reference: Vec<u32> = Vec::new();
        for k in 0..10_000u32 {
            let p = 100 + (k * 37) % 700;
            compact.insert(p);
            reference.push(p);
        }
        compact.finish();
        reference.sort_unstable();
        reference.dedup();
        assert_eq!(compact.as_slice(), &reference[..]);

        let mut sparse = PageSet::new();
        let mut reference: Vec<u32> = Vec::new();
        for k in (0..8u32).rev() {
            let p = k * 1_000_000;
            sparse.insert(p);
            reference.push(p);
        }
        sparse.finish();
        reference.sort_unstable();
        assert_eq!(sparse.as_slice(), &reference[..]);
        assert!(sparse.contains(3_000_000));
    }

    #[test]
    fn duplicated_wide_range_takes_sort_path() {
        // Regression: 100k inserts alternating between two pages a
        // megapage apart. The old threshold compared the range against
        // 64 × the *insert* count (6.4M ≥ 1M → bitmap), draining a
        // ~15.6k-word bitmap for two survivors. The distinct-aware
        // planner must reject the bitmap here and still canonicalize.
        let mut s = PageSet::new();
        for _ in 0..50_000 {
            s.insert(0);
            s.insert(1_000_000);
        }
        let range = 1_000_001usize;
        assert!(
            !bitmap_worthwhile(range, s.estimate_distinct(0, range)),
            "two coarse buckets over a megapage range must not plan a bitmap"
        );
        s.finish();
        assert_eq!(s.as_slice(), &[0, 1_000_000]);
    }

    #[test]
    fn threshold_saturates_at_full_u32_range() {
        // u32::MAX range with a big estimate: 64 × est would overflow a
        // 32-bit usize; saturating math must answer, not wrap. Also the
        // end-to-end set: extremes plus a dense low cluster.
        assert!(bitmap_worthwhile(u32::MAX as usize, usize::MAX / 32));
        assert!(!bitmap_worthwhile(usize::MAX, 1));
        let mut s = PageSet::new();
        s.insert(u32::MAX);
        for p in (0..1000u32).rev() {
            s.insert(p);
        }
        s.insert(u32::MAX);
        s.finish();
        assert_eq!(s.len(), 1001);
        assert_eq!(s.as_slice()[1000], u32::MAX);
        assert!(s.contains(999));
    }

    #[test]
    fn sharded_bitmap_fill_matches_sequential() {
        // Enough inserts to trip PAR_FILL_MIN, compact range → bitmap
        // path; the sharded fill must be bitwise-identical at any
        // thread count.
        let pages: Vec<u32> = (0..70_000u32)
            .map(|k| k.wrapping_mul(2654435761) % 3000)
            .collect();
        let build = || {
            let mut s = PageSet::new();
            for &p in &pages {
                s.insert(p);
            }
            s.finish();
            s
        };
        let pool1 = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let seq = pool1.install(build);
        for threads in [2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            assert_eq!(pool.install(build), seq);
        }
    }

    #[test]
    fn finish_is_idempotent() {
        let mut s = PageSet::new();
        for p in [9u32, 2, 9, 5, 2] {
            s.insert(p);
        }
        s.finish();
        s.finish();
        assert_eq!(s.as_slice(), &[2, 5, 9]);
    }

    #[test]
    fn pageset_union() {
        let a: PageSet = [1u32, 3, 5].into_iter().collect();
        let b: PageSet = [2u32, 3, 8].into_iter().collect();
        assert_eq!(a.union(&b).as_slice(), &[1, 2, 3, 5, 8]);
    }

    #[test]
    fn empty_section() {
        let s = pages_of_section(0, 8, 5, 4, 1, 4096);
        assert!(s.is_empty());
    }
}
