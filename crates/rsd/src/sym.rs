//! Symbolic regular sections: affine expressions over named symbols.
//!
//! The compiler cannot know `num_interactions` or the per-processor loop
//! bounds at compile time, so the sections it attaches to `Validate` calls
//! are symbolic — e.g. `interaction_list[1:2, my_lo:my_hi]` where `my_lo`,
//! `my_hi` come from the iteration partition. At run time each processor
//! binds the symbols ([`Env`]) and evaluates to a concrete [`Rsd`].

use std::collections::BTreeMap;
use std::fmt;

use crate::{Dim, Rsd};

/// An interned symbol (loop bound, program parameter, processor rank...).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub String);

impl Sym {
    pub fn new(name: impl Into<String>) -> Self {
        Sym(name.into())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// `Σ coeff·sym + constant` with integer coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Affine {
    /// Sorted by symbol for canonical form; zero coefficients removed.
    pub terms: BTreeMap<Sym, i64>,
    pub constant: i64,
}

impl Affine {
    pub fn constant(c: i64) -> Self {
        Affine {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    pub fn sym(s: impl Into<String>) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(Sym::new(s), 1);
        Affine { terms, constant: 0 }
    }

    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    pub fn add(&self, other: &Affine) -> Affine {
        let mut out = self.clone();
        out.constant += other.constant;
        for (s, c) in &other.terms {
            let e = out.terms.entry(s.clone()).or_insert(0);
            *e += c;
            if *e == 0 {
                out.terms.remove(s);
            }
        }
        out
    }

    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1))
    }

    pub fn scale(&self, k: i64) -> Affine {
        if k == 0 {
            return Affine::constant(0);
        }
        Affine {
            terms: self.terms.iter().map(|(s, c)| (s.clone(), c * k)).collect(),
            constant: self.constant * k,
        }
    }

    pub fn offset(&self, k: i64) -> Affine {
        let mut out = self.clone();
        out.constant += k;
        out
    }

    /// Evaluate under `env`; `None` if a symbol is unbound.
    pub fn eval(&self, env: &Env) -> Option<i64> {
        let mut v = self.constant;
        for (s, c) in &self.terms {
            v += c * env.get(s)?;
        }
        Some(v)
    }

    pub fn free_syms(&self) -> impl Iterator<Item = &Sym> {
        self.terms.keys()
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (s, c) in &self.terms {
            if first {
                match *c {
                    1 => write!(f, "{s}")?,
                    -1 => write!(f, "-{s}")?,
                    c => write!(f, "{c}*{s}")?,
                }
                first = false;
            } else if *c >= 0 {
                if *c == 1 {
                    write!(f, " + {s}")?;
                } else {
                    write!(f, " + {c}*{s}")?;
                }
            } else if *c == -1 {
                write!(f, " - {s}")?;
            } else {
                write!(f, " - {}*{s}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// Symbol bindings for evaluation.
#[derive(Debug, Clone, Default)]
pub struct Env {
    vals: BTreeMap<Sym, i64>,
}

impl Env {
    pub fn new() -> Self {
        Env::default()
    }

    pub fn bind(mut self, name: impl Into<String>, v: i64) -> Self {
        self.vals.insert(Sym::new(name), v);
        self
    }

    pub fn set(&mut self, name: impl Into<String>, v: i64) {
        self.vals.insert(Sym::new(name), v);
    }

    pub fn get(&self, s: &Sym) -> Option<i64> {
        self.vals.get(s).copied()
    }
}

/// A symbolic dimension `lo : hi : stride` (stride is always literal —
/// regular section analysis only produces constant strides).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymDim {
    pub lo: Affine,
    pub hi: Affine,
    pub stride: i64,
}

impl SymDim {
    pub fn dense(lo: Affine, hi: Affine) -> Self {
        SymDim { lo, hi, stride: 1 }
    }

    pub fn eval(&self, env: &Env) -> Option<Dim> {
        Some(Dim::new(self.lo.eval(env)?, self.hi.eval(env)?, self.stride))
    }
}

impl fmt::Display for SymDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.lo, self.hi)?;
        if self.stride != 1 {
            write!(f, ":{}", self.stride)?;
        }
        Ok(())
    }
}

/// A symbolic regular section descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymRsd {
    pub dims: Vec<SymDim>,
}

impl SymRsd {
    pub fn new(dims: Vec<SymDim>) -> Self {
        SymRsd { dims }
    }

    pub fn eval(&self, env: &Env) -> Option<Rsd> {
        self.dims
            .iter()
            .map(|d| d.eval(env))
            .collect::<Option<Vec<_>>>()
            .map(Rsd::new)
    }

    pub fn free_syms(&self) -> Vec<&Sym> {
        let mut v: Vec<&Sym> = self
            .dims
            .iter()
            .flat_map(|d| d.lo.free_syms().chain(d.hi.free_syms()))
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

impl fmt::Display for SymRsd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", d)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_algebra() {
        let a = Affine::sym("n").scale(2).offset(3); // 2n + 3
        let b = Affine::sym("n").add(&Affine::sym("m")); // n + m
        let c = a.sub(&b); // n - m + 3
        let env = Env::new().bind("n", 10).bind("m", 4);
        assert_eq!(a.eval(&env), Some(23));
        assert_eq!(c.eval(&env), Some(9));
    }

    #[test]
    fn zero_coefficients_cancel() {
        let a = Affine::sym("k").sub(&Affine::sym("k"));
        assert!(a.is_constant());
        assert_eq!(a.eval(&Env::new()), Some(0));
    }

    #[test]
    fn unbound_symbol_fails() {
        let a = Affine::sym("unknown");
        assert_eq!(a.eval(&Env::new()), None);
    }

    #[test]
    fn sym_rsd_eval() {
        // interaction_list[1:2, lo_p:hi_p]
        let r = SymRsd::new(vec![
            SymDim::dense(Affine::constant(1), Affine::constant(2)),
            SymDim::dense(Affine::sym("lo_p"), Affine::sym("hi_p")),
        ]);
        let env = Env::new().bind("lo_p", 1).bind("hi_p", 100);
        let c = r.eval(&env).unwrap();
        assert_eq!(c.len(), 200);
        assert_eq!(r.free_syms().len(), 2);
    }

    #[test]
    fn display_forms() {
        let a = Affine::sym("n").scale(2).offset(-1);
        assert_eq!(a.to_string(), "2*n - 1");
        assert_eq!(Affine::constant(7).to_string(), "7");
        let d = SymDim {
            lo: Affine::constant(1),
            hi: Affine::sym("n"),
            stride: 2,
        };
        assert_eq!(d.to_string(), "1:n:2");
    }
}
