//! Concrete (fully evaluated) regular sections.
//!
//! A [`Dim`] is the arithmetic progression `lo, lo+stride, ..., <= hi`
//! (Fortran triplet notation `lo:hi:stride`); an [`Rsd`] is the cartesian
//! product of its dimensions. Bounds are inclusive, matching the paper's
//! Fortran heritage (e.g. `interaction_list[1:2, 1:num_interactions]`).

use std::fmt;

/// One dimension of a regular section: `lo : hi : stride`, inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim {
    pub lo: i64,
    pub hi: i64,
    pub stride: i64,
}

impl Dim {
    pub fn new(lo: i64, hi: i64, stride: i64) -> Self {
        assert!(stride > 0, "stride must be positive");
        Dim { lo, hi, stride }
    }

    /// Dense section `lo..=hi`.
    pub fn dense(lo: i64, hi: i64) -> Self {
        Dim::new(lo, hi, 1)
    }

    /// Number of elements in the progression (0 if empty).
    pub fn len(&self) -> usize {
        if self.hi < self.lo {
            0
        } else {
            ((self.hi - self.lo) / self.stride + 1) as usize
        }
    }

    pub fn is_empty(&self) -> bool {
        self.hi < self.lo
    }

    /// Does the progression contain `v`?
    pub fn contains(&self, v: i64) -> bool {
        v >= self.lo && v <= self.hi && (v - self.lo) % self.stride == 0
    }

    /// Last element actually reached (≤ hi), or `None` if empty.
    pub fn last(&self) -> Option<i64> {
        if self.is_empty() {
            None
        } else {
            Some(self.lo + ((self.hi - self.lo) / self.stride) * self.stride)
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        (0..self.len() as i64).map(move |k| self.lo + k * self.stride)
    }

    /// Exact intersection of two arithmetic progressions, again an
    /// arithmetic progression (possibly empty). Solved with the extended
    /// Euclid construction: values `v ≡ lo_a (mod s_a)`, `v ≡ lo_b (mod s_b)`.
    pub fn intersect(&self, other: &Dim) -> Dim {
        let empty = Dim {
            lo: 0,
            hi: -1,
            stride: 1,
        };
        if self.is_empty() || other.is_empty() {
            return empty;
        }
        let (g, x, _) = ext_gcd(self.stride, other.stride);
        let diff = other.lo - self.lo;
        if diff % g != 0 {
            return empty;
        }
        let lcm = self.stride / g * other.stride;
        // v = lo_a + s_a * t where t ≡ x * diff/g (mod s_b/g)
        let m = other.stride / g;
        let t0 = (x.rem_euclid(m) * ((diff / g).rem_euclid(m))).rem_euclid(m);
        let mut lo = self.lo + self.stride * t0;
        let hi = self.hi.min(other.hi);
        // Raise lo above both section starts (t0 is already >= 0 so lo >= self.lo).
        if lo < other.lo {
            let k = (other.lo - lo + lcm - 1) / lcm;
            lo += k * lcm;
        }
        if lo > hi {
            empty
        } else {
            // Normalize: tighten hi to the last element actually reached,
            // so equal progressions compare equal structurally.
            let hi = lo + ((hi - lo) / lcm) * lcm;
            Dim {
                lo,
                hi,
                stride: lcm,
            }
        }
    }

    /// Smallest dense-ish section containing both (lossy union used for
    /// summary merging in the compiler): the stride is the gcd of both
    /// strides *and* of the offset between the section starts, so every
    /// element of either progression stays on the hull's grid.
    pub fn hull(&self, other: &Dim) -> Dim {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let g0 = gcd(self.stride, other.stride);
        let dl = (other.lo - self.lo).abs();
        let g = if dl == 0 { g0 } else { gcd(g0, dl) };
        Dim {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            stride: g.max(1),
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.stride == 1 {
            write!(f, "{}:{}", self.lo, self.hi)
        } else {
            write!(f, "{}:{}:{}", self.lo, self.hi, self.stride)
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Returns `(g, x, y)` with `a*x + b*y = g = gcd(a, b)`.
fn ext_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = ext_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// A multi-dimensional regular section descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rsd {
    pub dims: Vec<Dim>,
}

impl Rsd {
    pub fn new(dims: Vec<Dim>) -> Self {
        Rsd { dims }
    }

    pub fn dense1(lo: i64, hi: i64) -> Self {
        Rsd {
            dims: vec![Dim::dense(lo, hi)],
        }
    }

    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    pub fn len(&self) -> usize {
        self.dims.iter().map(Dim::len).product()
    }

    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(Dim::is_empty)
    }

    pub fn contains(&self, point: &[i64]) -> bool {
        point.len() == self.rank() && self.dims.iter().zip(point).all(|(d, &v)| d.contains(v))
    }

    /// Dimension-wise intersection (exact: an RSD is a product set).
    pub fn intersect(&self, other: &Rsd) -> Option<Rsd> {
        if self.rank() != other.rank() {
            return None;
        }
        Some(Rsd {
            dims: self
                .dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.intersect(b))
                .collect(),
        })
    }

    /// Dimension-wise hull (over-approximate union, for access summaries).
    pub fn hull(&self, other: &Rsd) -> Option<Rsd> {
        if self.rank() != other.rank() {
            return None;
        }
        Some(Rsd {
            dims: self
                .dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.hull(b))
                .collect(),
        })
    }

    /// Iterate all points, last dimension fastest (column-major callers
    /// should reverse dims; iteration order never matters to the runtime).
    pub fn iter_points(&self) -> impl Iterator<Item = Vec<i64>> + '_ {
        let lens: Vec<usize> = self.dims.iter().map(Dim::len).collect();
        let total: usize = lens.iter().product();
        (0..total).map(move |mut k| {
            let mut pt = vec![0i64; self.dims.len()];
            for (i, d) in self.dims.iter().enumerate().rev() {
                let l = lens[i].max(1);
                let idx = k % l;
                k /= l;
                pt[i] = d.lo + idx as i64 * d.stride;
            }
            pt
        })
    }

    /// For a 1-D section over a linear array: iterate flat element indices.
    pub fn iter_flat(&self) -> impl Iterator<Item = i64> + '_ {
        assert_eq!(self.rank(), 1, "iter_flat needs a 1-D section");
        self.dims[0].iter()
    }
}

impl fmt::Display for Rsd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", d)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_len_and_contains() {
        let d = Dim::new(1, 10, 3); // 1,4,7,10
        assert_eq!(d.len(), 4);
        assert!(d.contains(7));
        assert!(!d.contains(8));
        assert!(!d.contains(13));
        assert_eq!(d.last(), Some(10));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 4, 7, 10]);
    }

    #[test]
    fn empty_dim() {
        let d = Dim::new(5, 4, 1);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.last(), None);
    }

    #[test]
    fn intersect_same_stride() {
        let a = Dim::new(0, 100, 4); // 0,4,8,...
        let b = Dim::new(2, 100, 4); // 2,6,10,... disjoint residues
        assert!(a.intersect(&b).is_empty());
        let c = Dim::new(8, 40, 4);
        let i = a.intersect(&c);
        assert_eq!((i.lo, i.hi, i.stride), (8, 40, 4));
    }

    #[test]
    fn intersect_coprime_strides() {
        let a = Dim::new(0, 30, 3); // multiples of 3
        let b = Dim::new(0, 30, 5); // multiples of 5
        let i = a.intersect(&b);
        assert_eq!(i.stride, 15);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![0, 15, 30]);
    }

    #[test]
    fn intersect_with_offset() {
        let a = Dim::new(1, 50, 6); // 1,7,13,19,25,31,37,43,49
        let b = Dim::new(4, 50, 9); // 4,13,22,31,40,49
        let i = a.intersect(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![13, 31, 49]);
    }

    #[test]
    fn hull_covers_both() {
        let a = Dim::new(0, 10, 2);
        let b = Dim::new(20, 30, 2);
        let h = a.hull(&b);
        for v in a.iter().chain(b.iter()) {
            assert!(h.contains(v), "{v} missing from hull {h}");
        }
    }

    #[test]
    fn rsd_2d() {
        // interaction_list[1:2, 1:5]
        let r = Rsd::new(vec![Dim::dense(1, 2), Dim::dense(1, 5)]);
        assert_eq!(r.len(), 10);
        assert!(r.contains(&[2, 3]));
        assert!(!r.contains(&[3, 3]));
        assert_eq!(r.iter_points().count(), 10);
        assert_eq!(r.to_string(), "[1:2, 1:5]");
    }

    #[test]
    fn rsd_intersect_exact() {
        let a = Rsd::new(vec![Dim::dense(0, 9), Dim::new(0, 20, 2)]);
        let b = Rsd::new(vec![Dim::dense(5, 15), Dim::new(0, 20, 3)]);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.dims[0], Dim::dense(5, 9));
        assert_eq!(i.dims[1], Dim::new(0, 18, 6));
        for p in i.iter_points() {
            assert!(a.contains(&p) && b.contains(&p));
        }
    }

    #[test]
    fn flat_iteration() {
        let r = Rsd::dense1(3, 7);
        assert_eq!(r.iter_flat().collect::<Vec<_>>(), vec![3, 4, 5, 6, 7]);
    }
}
