//! # sdsm-repro
//!
//! Reproduction of *"Compiler and Software Distributed Shared Memory
//! Support for Irregular Applications"* (Lu, Cox, Dwarkadas, Rajamony,
//! Zwaenepoel — PPoPP 1997): a TreadMarks-style software DSM with
//! compiler-directed communication aggregation (`Validate`), a CHAOS
//! inspector/executor baseline, the ParaScope-style compiler front end,
//! and the paper's two irregular applications — all on one simulated
//! SP2-like cluster.
//!
//! This crate is the workspace façade: it re-exports every subsystem and
//! hosts the runnable examples and cross-crate integration tests. Start
//! with [`core_rt::validate`] (the paper's contribution), or run:
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release -p bench --bin table1 -- --quick
//! ```

/// The runtime-adaptive aggregation engine (the fourth system variant).
pub use adapt;
/// The applications: moldyn and nbf in sequential / Tmk / CHAOS builds.
pub use apps;
/// The CHAOS inspector/executor baseline run-time.
pub use chaos;
/// The TreadMarks-style software DSM (lazy release consistency).
pub use dsm;
/// The compiler front end (regular section analysis + Validate insertion).
pub use fcc;
/// Regular section descriptors.
pub use rsd;
/// The paper's contribution: the augmented `Validate` run-time.
pub use sdsm_core as core_rt;
/// The scenario-matrix service (work-stealing throughput driver).
pub use serve;
/// The simulated cluster substrate (clocks, messages, cost model).
pub use simnet;
/// The synthetic irregular-workload engine (scenario matrix).
pub use synth;
/// Deterministic simulated-time tracing + stall attribution.
pub use trace;
