//! Workspace-level integration: the compiler drives the run-time, the
//! run-time drives the DSM, and the whole pipeline reproduces the
//! paper's qualitative results at test scale.

use sdsm_repro::apps::moldyn::{self, MoldynConfig, TmkMode};
use sdsm_repro::apps::nbf::{self, NbfConfig};
use sdsm_repro::core_rt::{validate, AccessType, Cluster, Desc, DsmConfig, RegionRef, Validator};
use sdsm_repro::fcc;
use sdsm_repro::rsd::Env;

/// The compiler's moldyn descriptor, evaluated with a processor's
/// bindings, drives a real aggregated prefetch on the DSM.
#[test]
fn compiler_descriptor_drives_validate() {
    let result = fcc::compile(fcc::fixtures::MOLDYN_SOURCE).unwrap();
    let site = &result.sites[0];
    let sd = &site.descriptors[0];
    assert_eq!(sd.ind.as_deref(), Some("interaction_list"));

    let cl = Cluster::new(DsmConfig::with_nprocs(2));
    let n = 512usize;
    let x = cl.alloc::<f64>(n);
    let ilist = cl.alloc::<i32>(2 * 64);

    // Evaluate the symbolic section with a run-time binding, exactly as
    // the application does.
    let env = Env::new().bind("num_interactions", 64);
    let section = sd.section.eval(&env).expect("binds");
    assert_eq!(section.len(), 128);

    cl.run(|p| {
        if p.rank() == 0 {
            for i in 0..n {
                p.write(&x, i, i as f64);
            }
            for k in 0..64 {
                p.write(&ilist, 2 * k, (k * 8 + 1) as i32);
                p.write(&ilist, 2 * k + 1, (k * 8 + 2) as i32);
            }
        }
        p.barrier();
        if p.rank() == 1 {
            let mut v = Validator::new();
            validate(
                p,
                &mut v,
                &[Desc::Indirect {
                    data: RegionRef::of(&x),
                    ind: ilist,
                    ind_dims: vec![2, 64],
                    section: section.clone(),
                    access: AccessType::Read,
                    sched: 1,
                }],
            );
            // Prefetched: the irregular loop takes no faults.
            let faults = p.counters().read_faults;
            let mut acc = 0.0;
            for k in 0..64 {
                let n1 = p.read(&ilist, 2 * k) as usize - 1;
                let n2 = p.read(&ilist, 2 * k + 1) as usize - 1;
                acc += p.read(&x, n1) - p.read(&x, n2);
            }
            assert_eq!(p.counters().read_faults, faults);
            assert_eq!(acc, -64.0);
        }
        p.barrier();
    });
}

/// Figure 2 comes out of the pipeline byte-for-byte.
#[test]
fn figures_regenerate() {
    let r = fcc::compile(fcc::fixtures::MOLDYN_SOURCE).unwrap();
    assert!(r.source.contains(
        "call Validate(1, INDIRECT, x, interaction_list[1:2, 1:num_interactions], READ, 1)"
    ));
    assert!(r.source.contains("local_forces(n1) = local_forces(n1) + force"));
}

/// The paper's Table-1 shape at reduced scale: the optimized build beats
/// base; its advantage over CHAOS grows with rebuild frequency once the
/// inspector is counted.
#[test]
fn table1_shape_reduced_scale() {
    let mut cfg = MoldynConfig::small();
    cfg.n = 1024;
    cfg.steps = 8;
    cfg.update_interval = 4;
    let world = moldyn::gen_positions(&cfg);
    let seq = moldyn::run_seq(&cfg, &world);
    let (chaos, _) = moldyn::run_chaos(&cfg, &world, seq.report.time);
    let (base, _) = moldyn::run_tmk(&cfg, &world, TmkMode::Base, seq.report.time);
    let (opt, _) = moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);

    assert!(opt.time < base.time, "aggregation must win over demand paging");
    assert!(opt.messages * 2 < base.messages);
    // "the software DSM-based approach is always faster than CHAOS" once
    // the inspector is included.
    let chaos_total = chaos.time.as_secs_f64() + chaos.untimed_inspector_s;
    assert!(opt.time.as_secs_f64() < chaos_total);
    // All three scale: nobody slower than sequential.
    for r in [&chaos, &base, &opt] {
        assert!(r.time < seq.report.time);
    }
}

/// The paper's Table-2 false-sharing contrast at reduced scale: the
/// misaligned size sends more messages and data than the aligned one.
#[test]
fn table2_false_sharing_shape() {
    let run = |n: usize| {
        let mut cfg = NbfConfig::paper(n);
        cfg.n = n;
        cfg.partners = 24;
        cfg.steps = 4;
        cfg.page_size = 1024;
        let world = nbf::gen_world(&cfg);
        let seq = nbf::run_seq(&cfg, &world);
        nbf::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time).0
    };
    let aligned = run(8192); // 8192/8 procs = 1024 f64 = 8 KB: page aligned
    let misaligned = run(8000); // 1000 f64 = 7.8125 pages
    assert!(
        misaligned.messages > aligned.messages,
        "false sharing must add messages: {} vs {}",
        misaligned.messages,
        aligned.messages
    );
    assert!(misaligned.bytes > aligned.bytes);
}

/// Locks + barriers + Validate coexist (the full TreadMarks API surface).
#[test]
fn full_api_surface() {
    let cl = Cluster::new(DsmConfig::with_nprocs(4));
    let data = cl.alloc::<f64>(1024);
    let sum = cl.alloc::<f64>(8);
    cl.run(|p| {
        let me = p.rank();
        let chunk = data.len() / p.nprocs();
        for i in me * chunk..(me + 1) * chunk {
            p.write(&data, i, 1.0);
        }
        p.barrier();

        let mut v = Validator::new();
        validate(
            p,
            &mut v,
            &[Desc::Direct {
                data: RegionRef::of(&data),
                section: sdsm_repro::rsd::Rsd::dense1(1, data.len() as i64),
                access: AccessType::Read,
                sched: 1,
            }],
        );
        let mut local = 0.0;
        for i in 0..data.len() {
            local += p.read(&data, i);
        }
        p.lock(1);
        let cur = p.read(&sum, 0);
        p.write(&sum, 0, cur + local);
        p.unlock(1);
        p.barrier();
        assert_eq!(p.read(&sum, 0), (4 * data.len()) as f64);
        p.barrier();
    });
}
