//! Smoke tests mirroring the runnable examples at quick scale, so an
//! example-level regression fails `cargo test` instead of rotting until
//! someone happens to `cargo run` it. Each test follows the corresponding
//! example's code path (`examples/*.rs`) with its printout replaced by
//! assertions; scales are cut to keep the whole suite in seconds.

use sdsm_repro::apps::umesh::{self, UmeshConfig};
use sdsm_repro::apps::{moldyn, nbf};
use sdsm_repro::core_rt::{Cluster, DsmConfig};
use sdsm_repro::{apps, fcc};

/// `examples/quickstart.rs`: barriers, locks, multiple-writer sharing, and
/// the traffic report on 4 simulated processors.
#[test]
fn quickstart_path() {
    let cl = Cluster::new(DsmConfig::with_nprocs(4));
    let data = cl.alloc::<f64>(4096);
    let total = cl.alloc::<f64>(8);

    cl.run(|p| {
        let me = p.rank();
        let n = data.len();
        let chunk = n / p.nprocs();
        for i in me * chunk..(me + 1) * chunk {
            p.write(&data, i, (i % 7) as f64);
        }
        p.barrier();

        let nb = (me + 1) % p.nprocs();
        let mut sum = 0.0;
        for i in nb * chunk..(nb + 1) * chunk {
            sum += p.read(&data, i);
        }

        p.lock(1);
        let cur = p.read(&total, 0);
        p.write(&total, 0, cur + sum);
        p.unlock(1);
        p.barrier();

        if me == 0 {
            let grand = p.read(&total, 0);
            assert_eq!(grand, (0..data.len()).map(|i| (i % 7) as f64).sum());
        }
    });

    let rep = cl.report();
    assert!(rep.messages > 0, "sharing must generate protocol traffic");
    assert!(rep.bytes > 0);
    assert!(cl.elapsed().as_secs_f64() > 0.0);
}

/// `examples/moldyn.rs` at quick scale: all four builds run and the
/// optimized DSM beats base on messages.
#[test]
fn moldyn_example_path() {
    let mut cfg = moldyn::MoldynConfig::small();
    cfg.n = 512;
    cfg.steps = 4;
    cfg.update_interval = 2;
    let world = moldyn::gen_positions(&cfg);
    let seq = moldyn::run_seq(&cfg, &world);
    let (base, _) = moldyn::run_tmk(&cfg, &world, moldyn::TmkMode::Base, seq.report.time);
    let (opt, _) = moldyn::run_tmk(&cfg, &world, moldyn::TmkMode::Optimized, seq.report.time);
    let (chaos, _) = moldyn::run_chaos(&cfg, &world, seq.report.time);
    assert!(opt.messages < base.messages);
    assert!(chaos.time.as_secs_f64() > 0.0);
}

/// `examples/nbf.rs` at quick scale.
#[test]
fn nbf_example_path() {
    let mut cfg = nbf::NbfConfig::small();
    cfg.n = 1024;
    cfg.partners = 8;
    let world = nbf::gen_world(&cfg);
    let seq = nbf::run_seq(&cfg, &world);
    let (base, _) = nbf::run_tmk(&cfg, &world, nbf::TmkMode::Base, seq.report.time);
    let (opt, _) = nbf::run_tmk(&cfg, &world, nbf::TmkMode::Optimized, seq.report.time);
    assert!(opt.messages < base.messages);
}

/// `examples/umesh.rs` at small scale: the third workload's three systems
/// agree and the cached Validate schedule is reused on the static mesh.
#[test]
fn umesh_example_path() {
    let cfg = UmeshConfig::small();
    let mesh = umesh::gen_mesh(&cfg);
    let seq = umesh::run_seq(&cfg, &mesh);
    let (chaos, xc) = umesh::run_chaos(&cfg, &mesh, seq.report.time);
    let (opt, xo) = umesh::run_tmk(&cfg, &mesh, umesh::TmkMode::Optimized, seq.report.time);
    // Fixed-order owner-side accumulation: every build replays the
    // sequential flux order, so agreement is bitwise (same contract as
    // the `all_variants_agree` test in `apps::umesh`).
    for (label, got) in [("chaos", &xc), ("tmk-opt", &xo)] {
        assert_eq!(got, &seq.x, "{label} must be bitwise identical to seq");
    }
    assert!(chaos.untimed_inspector_s > 0.0);
    assert!(opt.time < seq.report.time);
}

/// `examples/adaptive.rs`: the fourth variant learns a stable irregular
/// pattern and cuts messages without compiler hints.
#[test]
fn adaptive_example_path() {
    use sdsm_repro::adapt::{AdaptConfig, AdaptivePolicy};
    let cl = Cluster::new(DsmConfig::with_nprocs(4));
    let data = cl.alloc::<f64>(8 * 512);
    cl.run(|p| p.set_policy(Box::new(AdaptivePolicy::new(AdaptConfig::default()))));
    cl.run(|p| {
        let me = p.rank();
        let n = data.len();
        let chunk = n / p.nprocs();
        for e in 0..6 {
            for i in me * chunk..(me + 1) * chunk {
                p.write(&data, i, (e + i) as f64);
            }
            p.barrier();
            // Fixed irregular read set: the same remote elements each epoch.
            let mut acc = 0.0;
            for k in 0..32 {
                acc += p.read(&data, (me * 97 + k * 131) % n);
            }
            assert!(acc >= 0.0);
            p.barrier();
        }
    });
    let pol = cl.net().policy_report();
    assert!(pol.promotions > 0, "the stable pattern must be learned");
    assert!(pol.prefetch_rounds > 0);
    let rep = cl.report();
    assert!(rep.messages_per_kind(sdsm_repro::simnet::MsgKind::AdaptRequest) > 0);
}

/// `examples/synth.rs` at reduced scale: one synthetic scenario through
/// the generic `Workload` runner — five variants, bitwise agreement
/// asserted inside `run_matrix`, adaptive within base's message count.
#[test]
fn synth_example_path() {
    use sdsm_repro::apps::workload::{run_matrix, Variant};
    use sdsm_repro::synth::{Dynamics, Scenario, Structure, SynthConfig};
    let mut cfg = SynthConfig::quick(
        Structure::PowerLaw { alpha: 2.0 },
        Dynamics::PeriodicRemap { period: 3 },
    );
    cfg.n = 512;
    cfg.refs = 1536;
    cfg.iters = 6;
    cfg.page_size = 256;
    let matrix = run_matrix(&Scenario::new(cfg));
    let base = &matrix.get(Variant::TmkBase).report;
    assert!(matrix.get(Variant::TmkAdaptive).report.messages <= base.messages);
    assert!(matrix.get(Variant::Chaos).report.inspector_s > 0.0);
}

/// `examples/compiler_pipeline.rs`: Figure 1 compiles and the Validate
/// call of Figure 2 is regenerated.
#[test]
fn compiler_pipeline_path() {
    let r = fcc::compile(fcc::fixtures::MOLDYN_SOURCE).unwrap();
    assert!(!r.sites.is_empty());
    assert!(r.source.contains("call Validate"));
}

/// The report/table plumbing every example's printout goes through.
#[test]
fn report_table_plumbing() {
    let header = apps::report::table_header();
    assert!(header.contains("Time"));
}
