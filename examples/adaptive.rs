//! Quickstart for the runtime-adaptive variants: the adaptive
//! aggregation engine and its update-push mode. No compiler hints, no
//! inspector — the runtime watches per-page miss/invalidation history,
//! batches the fetches it can predict, and in push mode lets the
//! writers ship the diffs in a single one-way message per peer.
//!
//! ```text
//! cargo run --release --example adaptive
//! ```

use sdsm_repro::adapt::{AdaptConfig, AdaptivePolicy};
use sdsm_repro::dsm::{Cluster, DsmConfig};

/// An irregular producer/consumer: each epoch, every processor writes
/// its block and then reads a seeded scatter of remote elements — the
/// access pattern is data-dependent (no compiler could name it), but
/// stable across epochs, which is exactly what the engine learns.
fn run(policy: Option<AdaptConfig>) -> (u64, u64, sdsm_repro::simnet::PolicyReport) {
    let nprocs = 4;
    let epochs = 8;
    let n = 16 * 512; // 16 pages of f64 at 4 KB
    let cl = Cluster::new(DsmConfig::with_nprocs(nprocs));
    let data = cl.alloc::<f64>(n);

    if let Some(cfg) = policy {
        cl.run(|p| p.set_policy(Box::new(AdaptivePolicy::new(cfg.clone()))));
    }

    cl.run(|p| {
        let me = p.rank();
        let chunk = n / p.nprocs();
        // A fixed pseudo-random read set per processor (SplitMix-style).
        let targets: Vec<usize> = (0..64)
            .map(|k| {
                let mut z = (me as u64 + 1) * 0x9E37_79B9 + k as u64 * 0xBF58_476D;
                z ^= z >> 13;
                (z as usize) % n
            })
            .collect();
        for e in 0..epochs {
            for i in me * chunk..(me + 1) * chunk {
                p.write(&data, i, (e * n + i) as f64);
            }
            p.barrier();
            let mut acc = 0.0;
            for &t in &targets {
                acc += p.read(&data, t);
            }
            assert!(acc >= 0.0);
            p.barrier();
        }
    });

    let rep = cl.report();
    (rep.messages, rep.bytes, cl.net().policy_report())
}

fn main() {
    println!("=== adaptive: runtime-learned aggregation, no compiler hints ===\n");
    let (base_msgs, base_bytes, _) = run(None);
    let (ad_msgs, ad_bytes, pol) = run(Some(AdaptConfig::default()));
    let (push_msgs, push_bytes, push_pol) = run(Some(AdaptConfig::pushing()));

    println!("{:<18} {:>10} {:>12}", "System", "Messages", "Bytes");
    println!("{:<18} {:>10} {:>12}", "Tmk base", base_msgs, base_bytes);
    println!("{:<18} {:>10} {:>12}", "Tmk adaptive", ad_msgs, ad_bytes);
    println!("{:<18} {:>10} {:>12}", "Tmk push", push_msgs, push_bytes);
    assert!(ad_msgs < base_msgs, "the learned pattern must cut traffic");
    assert!(push_msgs < ad_msgs, "update-push must cut the request legs");
    println!(
        "\nmessage reduction: adaptive {:.1}%, update-push {:.1}%",
        100.0 * (base_msgs - ad_msgs) as f64 / base_msgs as f64,
        100.0 * (base_msgs - push_msgs) as f64 / base_msgs as f64
    );
    println!(
        "policy decisions: {} epochs, {} promotions, {} prefetch rounds \
         covering {} pages, {} probes, {} demotions",
        pol.epochs,
        pol.promotions,
        pol.prefetch_rounds,
        pol.prefetch_pages,
        pol.probes,
        pol.demotions
    );
    println!(
        "push mode: {} one-way push rounds covering {} pages, {} plans quiesced",
        push_pol.push_rounds, push_pol.push_pages, push_pol.quiesced_plans
    );
    println!("\nSame results, fewer messages — learned at run time.");
}
