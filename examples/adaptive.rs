//! Quickstart for the fourth system variant: the runtime-adaptive
//! aggregation engine. No compiler hints, no inspector — the runtime
//! watches per-page miss/invalidation history and batches the fetches
//! it can predict.
//!
//! ```text
//! cargo run --release --example adaptive
//! ```

use sdsm_repro::adapt::{AdaptConfig, AdaptivePolicy};
use sdsm_repro::dsm::{Cluster, DsmConfig};

/// An irregular producer/consumer: each epoch, every processor writes
/// its block and then reads a seeded scatter of remote elements — the
/// access pattern is data-dependent (no compiler could name it), but
/// stable across epochs, which is exactly what the engine learns.
fn run(adaptive: bool) -> (u64, u64, sdsm_repro::simnet::PolicyReport) {
    let nprocs = 4;
    let epochs = 8;
    let n = 16 * 512; // 16 pages of f64 at 4 KB
    let cl = Cluster::new(DsmConfig::with_nprocs(nprocs));
    let data = cl.alloc::<f64>(n);

    if adaptive {
        cl.run(|p| p.set_policy(Box::new(AdaptivePolicy::new(AdaptConfig::default()))));
    }

    cl.run(|p| {
        let me = p.rank();
        let chunk = n / p.nprocs();
        // A fixed pseudo-random read set per processor (SplitMix-style).
        let targets: Vec<usize> = (0..64)
            .map(|k| {
                let mut z = (me as u64 + 1) * 0x9E37_79B9 + k as u64 * 0xBF58_476D;
                z ^= z >> 13;
                (z as usize) % n
            })
            .collect();
        for e in 0..epochs {
            for i in me * chunk..(me + 1) * chunk {
                p.write(&data, i, (e * n + i) as f64);
            }
            p.barrier();
            let mut acc = 0.0;
            for &t in &targets {
                acc += p.read(&data, t);
            }
            assert!(acc >= 0.0);
            p.barrier();
        }
    });

    let rep = cl.report();
    (rep.messages, rep.bytes, cl.net().policy_report())
}

fn main() {
    println!("=== adaptive: runtime-learned aggregation, no compiler hints ===\n");
    let (base_msgs, base_bytes, _) = run(false);
    let (ad_msgs, ad_bytes, pol) = run(true);

    println!("{:<18} {:>10} {:>12}", "System", "Messages", "Bytes");
    println!("{:<18} {:>10} {:>12}", "Tmk base", base_msgs, base_bytes);
    println!("{:<18} {:>10} {:>12}", "Tmk adaptive", ad_msgs, ad_bytes);
    assert!(ad_msgs < base_msgs, "the learned pattern must cut traffic");
    println!(
        "\nmessage reduction: {:.1}%",
        100.0 * (base_msgs - ad_msgs) as f64 / base_msgs as f64
    );
    println!(
        "policy decisions: {} epochs, {} promotions, {} prefetch rounds \
         covering {} pages, {} probes, {} demotions",
        pol.epochs,
        pol.promotions,
        pol.prefetch_rounds,
        pol.prefetch_pages,
        pol.probes,
        pol.demotions
    );
    println!("\nSame results, fewer messages — learned at run time.");
}
