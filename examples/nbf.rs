//! Run the nbf experiment (reduced scale), including the false-sharing
//! contrast the paper builds Table 2 around: a molecule count that tiles
//! pages exactly versus one that leaves partition boundaries mid-page.
//!
//! ```text
//! cargo run --release --example nbf
//! ```

use sdsm_repro::apps::nbf::{self, NbfConfig, TmkMode};
use sdsm_repro::apps::report::table_header;

fn main() {
    // 8192 molecules × 8B = 16 pages exactly; 8000 molecules misalign.
    for (label, n) in [("aligned (8x1024)", 8192usize), ("misaligned (8x1000)", 8000)] {
        let mut cfg = NbfConfig::paper(n);
        cfg.partners = 60;
        println!("\nnbf {label}: {} molecules, {} partners each", cfg.n, cfg.partners);

        let world = nbf::gen_world(&cfg);
        let seq = nbf::run_seq(&cfg, &world);
        let (chaos, _) = nbf::run_chaos(&cfg, &world, seq.report.time);
        let (base, _) = nbf::run_tmk(&cfg, &world, TmkMode::Base, seq.report.time);
        let (opt, _) = nbf::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);

        println!("sequential {:.1} s", seq.report.time.as_secs_f64());
        println!("{}", table_header());
        for r in [&chaos, &base, &opt] {
            println!("{}", r.row());
        }
    }
    println!("\nThe misaligned size sends extra messages and data purely from");
    println!("false sharing at partition boundaries (paper §5.2.1).");
}
