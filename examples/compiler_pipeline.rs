//! The compiler pipeline end to end: parse the paper's Figure-1 source,
//! run regular-section analysis, print the transformed program (the
//! paper's Figure 2), and show the machine-readable Validate sites the
//! run-time applications consume.
//!
//! ```text
//! cargo run --example compiler_pipeline
//! ```

use sdsm_repro::fcc;

fn main() {
    println!("──── input (paper Figure 1) ────\n");
    println!("{}", fcc::fixtures::MOLDYN_SOURCE);

    let result = fcc::compile(fcc::fixtures::MOLDYN_SOURCE).expect("compiles");

    println!("──── transformed (paper Figure 2) ────\n");
    println!("{}", result.source);

    println!("──── access analysis ────\n");
    for a in &result.analyses {
        if a.accesses.is_empty() && a.reductions.is_empty() {
            continue;
        }
        println!("unit {}:", a.unit);
        for acc in &a.accesses {
            match &acc.kind {
                fcc::analysis::AccessKind::Direct { section } => {
                    println!("  {} {:?} direct section {}", acc.array, acc.acc, section);
                }
                fcc::analysis::AccessKind::Indirect {
                    ind, ind_section, ..
                } => {
                    println!(
                        "  {} {:?} INDIRECT via {}{}",
                        acc.array, acc.acc, ind, ind_section
                    );
                }
            }
        }
        for r in &a.reductions {
            println!("  irregular reduction: {} → private {}", r.array, r.local);
        }
    }

    println!("\n──── Validate sites (what the run-time receives) ────\n");
    for site in &result.sites {
        println!("at entry of {}:", site.unit);
        for d in &site.descriptors {
            println!(
                "  Validate descriptor: {:?} data={} ind={:?} section={} access={} sched={}",
                d.kind, d.data, d.ind, d.section, d.access, d.schedule
            );
        }
    }
}
