//! Unstructured-mesh relaxation on all three systems — the third
//! irregular workload, exercising the public API beyond the paper's two
//! benchmarks, including the *incremental* Read_indices extension.
//!
//! ```text
//! cargo run --release --example umesh
//! ```

use sdsm_repro::apps::report::table_header;
use sdsm_repro::apps::umesh::{self, TmkMode, UmeshConfig};

fn main() {
    let cfg = UmeshConfig::medium();
    println!(
        "umesh: {}x{} grid ({} nodes), {} sweeps, {} processors",
        cfg.side,
        cfg.side,
        cfg.n(),
        cfg.sweeps,
        cfg.nprocs
    );
    let mesh = umesh::gen_mesh(&cfg);
    println!("{} edges ({} long-range)", mesh.edges.len(), {
        let grid = 2 * cfg.side * (cfg.side - 1);
        mesh.edges.len() - grid
    });

    let seq = umesh::run_seq(&cfg, &mesh);
    println!("sequential: {:.2} s (simulated)\n", seq.report.time.as_secs_f64());

    let (chaos, _) = umesh::run_chaos(&cfg, &mesh, seq.report.time);
    let (base, _) = umesh::run_tmk(&cfg, &mesh, TmkMode::Base, seq.report.time);
    let (opt, _) = umesh::run_tmk(&cfg, &mesh, TmkMode::Optimized, seq.report.time);

    println!("{}", table_header());
    for r in [&chaos, &base, &opt] {
        println!("{}", r.row());
    }
    println!(
        "\nStatic mesh: CHAOS's inspector ran once ({:.2} s/proc, untimed);\n\
         Validate scanned the edge list once ({:.3} s/proc) and reused the\n\
         cached schedule for every later sweep.",
        chaos.untimed_inspector_s, opt.validate_scan_s
    );
}
