//! Quickstart: shared memory on the simulated cluster in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Allocates a shared array, runs an SPMD body on 4 simulated
//! processors (each an OS thread), exercises barriers, locks, and
//! demand-paged sharing, then prints the protocol traffic.

use sdsm_repro::core_rt::{Cluster, DsmConfig};

fn main() {
    let cl = Cluster::new(DsmConfig::with_nprocs(4));
    let data = cl.alloc::<f64>(4096); // 8 pages of shared f64s
    let total = cl.alloc::<f64>(8);

    cl.run(|p| {
        let me = p.rank();
        let n = data.len();
        let chunk = n / p.nprocs();

        // Every processor fills its block (multiple-writer protocol:
        // concurrent writers to one page merge by diffs).
        for i in me * chunk..(me + 1) * chunk {
            p.write(&data, i, (i % 7) as f64);
        }
        p.barrier();

        // Everyone reads a neighbour's block — demand paging fetches
        // exactly the pages touched, as diffs from their writers.
        let nb = (me + 1) % p.nprocs();
        let mut sum = 0.0;
        for i in nb * chunk..(nb + 1) * chunk {
            sum += p.read(&data, i);
        }

        // A lock-protected global reduction.
        p.lock(1);
        let cur = p.read(&total, 0);
        p.write(&total, 0, cur + sum);
        p.unlock(1);
        p.barrier();

        if me == 0 {
            let grand = p.read(&total, 0);
            println!("grand total = {grand}");
            assert_eq!(grand, (0..data.len()).map(|i| (i % 7) as f64).sum());
        }
    });

    let rep = cl.report();
    println!(
        "simulated time {:.3} ms, {} messages, {} bytes",
        cl.elapsed().as_secs_f64() * 1e3,
        rep.messages,
        rep.bytes
    );
    for (kind, msgs, bytes) in &rep.per_kind {
        println!("  {:<10} {:>6} msgs {:>10} bytes", kind.name(), msgs, bytes);
    }
}
