//! Run the moldyn experiment (reduced scale) across all three systems
//! and print a Table-1-style comparison.
//!
//! ```text
//! cargo run --release --example moldyn
//! ```

use sdsm_repro::apps::moldyn::{self, MoldynConfig, TmkMode};
use sdsm_repro::apps::report::table_header;

fn main() {
    let mut cfg = MoldynConfig::paper(10);
    cfg.n = 4096; // reduced from the paper's 16384 for a quick demo
    cfg.steps = 20;
    cfg.cutoff_frac = 0.18;

    println!(
        "moldyn: {} molecules, {} steps, list rebuilt every {} steps, {} processors",
        cfg.n, cfg.steps, cfg.update_interval, cfg.nprocs
    );

    let world = moldyn::gen_positions(&cfg);
    let seq = moldyn::run_seq(&cfg, &world);
    println!("sequential: {:.1} s (simulated)\n", seq.report.time.as_secs_f64());

    let (chaos, _) = moldyn::run_chaos(&cfg, &world, seq.report.time);
    let (base, _) = moldyn::run_tmk(&cfg, &world, TmkMode::Base, seq.report.time);
    let (opt, _) = moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);

    println!("{}", table_header());
    for r in [&chaos, &base, &opt] {
        println!("{}", r.row());
    }
    println!(
        "\nCHAOS spends {:.2} s/proc re-running the inspector in the loop;\n\
         TreadMarks+Validate spends {:.3} s/proc rescanning the indirection array.",
        chaos.inspector_s, opt.validate_scan_s
    );
    assert!(opt.messages < base.messages);
}
