//! The Figure-3 interface driven by hand: an irregular gather through an
//! indirection array, showing schedule caching, change detection, and
//! the aggregated fetch — without the compiler in the loop.
//!
//! ```text
//! cargo run --release --example validate_interface
//! ```

use sdsm_repro::core_rt::{
    validate, AccessType, Cluster, Desc, DsmConfig, MsgKind, RegionRef, Validator,
};
use sdsm_repro::rsd::Rsd;

fn main() {
    let nprocs = 4;
    let cl = Cluster::new(DsmConfig::with_nprocs(nprocs));
    let n = 16_384usize;
    let data = cl.alloc::<f64>(n); // 32 pages
    let ind = cl.alloc::<i32>(n / 16); // every 16th element

    cl.run(|p| {
        let me = p.rank();
        let chunk = n / p.nprocs();

        // Owners fill their blocks; processor 0 builds the indirection.
        for i in me * chunk..(me + 1) * chunk {
            p.write(&data, i, i as f64);
        }
        if me == 0 {
            for k in 0..ind.len() {
                p.write(&ind, k, (k * 16 + 1) as i32); // 1-based targets
            }
        }
        p.barrier();

        // Validate: one INDIRECT descriptor, exactly Figure 3's shape:
        //   Validate(1, INDIRECT, data, ind[1:n/16], READ, 1)
        let mut v = Validator::new();
        let desc = || Desc::Indirect {
            data: RegionRef::of(&data),
            ind,
            ind_dims: vec![ind.len()],
            section: Rsd::dense1(1, ind.len() as i64),
            access: AccessType::Read,
            sched: 1,
        };
        validate(p, &mut v, &[desc()]);
        let info = v.schedule(1).unwrap();
        if me == 1 {
            println!(
                "proc {me}: schedule 1 covers {} pages (recomputed {} times)",
                info.pages.len(),
                info.recomputes
            );
        }

        // The irregular loop: every read is a hit — pages arrived in one
        // exchange per peer.
        let faults_before = p.counters().read_faults;
        let mut acc = 0.0;
        for k in 0..ind.len() {
            let t = p.read(&ind, k) as usize - 1;
            acc += p.read(&data, t);
        }
        assert_eq!(p.counters().read_faults, faults_before);
        assert_eq!(acc, (0..ind.len()).map(|k| (k * 16) as f64).sum());
        p.barrier();

        // Unchanged indirection: the second Validate reuses the schedule.
        validate(p, &mut v, &[desc()]);
        assert_eq!(v.schedule(1).unwrap().recomputes, info.recomputes);

        // Processor 0 rewires one entry — everyone detects it (local
        // write fault at 0; write notices everywhere else).
        if me == 0 {
            p.write(&ind, 0, 2);
        }
        p.barrier();
        validate(p, &mut v, &[desc()]);
        assert_eq!(v.schedule(1).unwrap().recomputes, info.recomputes + 1);
        p.barrier();
    });

    let rep = cl.report();
    println!(
        "aggregated exchanges: {} requests / {} replies ({} bytes of diffs)",
        rep.messages_per_kind(MsgKind::AggRequest),
        rep.messages_per_kind(MsgKind::AggReply),
        rep.bytes_per_kind(MsgKind::AggReply),
    );
    println!(
        "demand faults:        {} requests (the loop itself took none)",
        rep.messages_per_kind(MsgKind::DiffRequest)
    );
}
