//! The synthetic irregular-workload engine: one scenario, all five
//! system variants, cross-checked bitwise by the generic `Workload`
//! runner.
//!
//! ```text
//! cargo run --release --example synth
//! ```

use sdsm_repro::apps::workload::{run_matrix, Variant};
use sdsm_repro::synth::{Dynamics, Scenario, Structure, SynthConfig};

fn main() {
    // A moldyn-flavoured cell: skewed interaction structure, wholesale
    // remap every 3 iterations.
    let cfg = SynthConfig::quick(
        Structure::PowerLaw { alpha: 2.0 },
        Dynamics::PeriodicRemap { period: 3 },
    );
    println!(
        "synth scenario {}: {} elements, {} raw refs, {} iterations",
        cfg.label(),
        cfg.n,
        cfg.refs,
        cfg.iters
    );
    let scenario = Scenario::new(cfg);
    println!(
        "{} distinct list versions, kappa = {:.5}\n",
        scenario.world.lists.len(),
        scenario.world.kappa
    );

    // Runs seq + Tmk base/opt/adaptive + CHAOS, asserting bitwise
    // agreement across all five before returning.
    let matrix = run_matrix(&scenario);
    matrix.print();

    let base = &matrix.get(Variant::TmkBase).report;
    let ad = &matrix.get(Variant::TmkAdaptive).report;
    let chaos = &matrix.get(Variant::Chaos).report;
    println!(
        "\nAll five variants bitwise-identical. Adaptive cut messages \
         {} -> {} ({}%) with no compiler hints;",
        base.messages,
        ad.messages,
        100 * base.messages.saturating_sub(ad.messages) / base.messages.max(1)
    );
    println!(
        "CHAOS re-ran its inspector {:.2} s/proc inside the timed region \
         (the list remaps every 3 iterations).",
        chaos.inspector_s
    );
    println!("\nThe full grid: cargo run --release -p bench --bin table_synth -- --quick");
}
