//! Offline shim for the `criterion` crate.
//!
//! The workspace builds without registry access, so this provides the
//! subset the benches use: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement runs a
//! warmup phase (so the measured batches see warm caches and a warmed
//! allocator, not first-touch costs), then reports the **median ± MAD**
//! of per-iteration time across timed batches — robust statistics that
//! one preempted batch cannot skew, unlike a mean or a best-of. No HTML
//! reports or baselines; each benchmark is time-capped so `cargo bench`
//! stays fast.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    /// Soft per-benchmark wall-clock budget.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
            sample_size: 50,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(self.budget, 50, name, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(self.c.budget, self.sample_size, &full, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Median and median-absolute-deviation of `xs` (sorted in place).
fn median_mad(xs: &mut [f64]) -> (f64, f64) {
    assert!(!xs.is_empty());
    let mid = |v: &[f64]| {
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        }
    };
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let med = mid(xs);
    let mut dev: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    dev.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (med, mid(&dev))
}

fn run_bench<F: FnMut(&mut Bencher)>(budget: Duration, samples: usize, name: &str, mut f: F) {
    // Calibrate: one iteration to size the warmup.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));

    // Warmup (~1/5 of the budget): the measured batches below should
    // see warm caches and a warmed allocator, not first-touch costs.
    let warm_budget = budget / 5;
    let warm_iters = (warm_budget.as_nanos() / per_iter.as_nanos()).clamp(1, 200_000) as u64;
    let mut b = Bencher { iters: warm_iters, elapsed: Duration::ZERO };
    f(&mut b);
    // Re-estimate per-iteration cost from the (warm) warmup phase.
    let per_iter = (b.elapsed / warm_iters as u32).max(Duration::from_nanos(1));

    let meas_budget = budget - warm_budget;
    let total_iters = (meas_budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let batch = (total_iters / samples as u64).max(1);

    let mut per_batch_ns: Vec<f64> = Vec::with_capacity(samples);
    let mut spent = Duration::ZERO;
    for _ in 0..samples {
        let mut b = Bencher { iters: batch, elapsed: Duration::ZERO };
        f(&mut b);
        per_batch_ns.push(b.elapsed.as_nanos() as f64 / batch as f64);
        spent += b.elapsed;
        if spent > meas_budget && per_batch_ns.len() >= 3 {
            break;
        }
    }
    let (median, mad) = median_mad(&mut per_batch_ns);
    println!(
        "{name:<50} {median:>12.1} ns/iter ± {mad:.1} (median ± MAD of {} batches)",
        per_batch_ns.len()
    );

    // Machine-readable sink: append one JSON line per benchmark to the
    // file named by CRITERION_JSON (collected into the committed bench
    // snapshot by `make bench`). Append-only so multiple bench binaries
    // in one `cargo bench` run share the file; the collector takes the
    // last line per name. `"ns"` stays the first key and `"mad_ns"`
    // never contains the `"ns":` byte pattern, so older collectors that
    // substring-scan for `"ns":` keep parsing these lines.
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            let line = format!(
                "{{\"name\":\"{}\",\"ns\":{median:.1},\"mad_ns\":{mad:.1},\"batches\":{}}}\n",
                name.replace('\\', "\\\\").replace('"', "\\\""),
                per_batch_ns.len()
            );
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1))
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn median_mad_is_robust_to_one_outlier() {
        let mut xs = vec![10.0, 11.0, 9.0, 10.0, 500.0];
        let (med, mad) = median_mad(&mut xs);
        assert_eq!(med, 10.0, "one preempted batch must not move the median");
        assert_eq!(mad, 1.0);
        let mut even = vec![1.0, 3.0];
        assert_eq!(median_mad(&mut even), (2.0, 1.0));
        let mut one = vec![7.0];
        assert_eq!(median_mad(&mut one), (7.0, 0.0));
    }
}
