//! Offline shim for the `criterion` crate.
//!
//! The workspace builds without registry access, so this provides the
//! subset the benches use: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! best-of-samples timing loop (no statistics, HTML reports, or baselines);
//! each benchmark is time-capped so `cargo bench` stays fast.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    /// Soft per-benchmark wall-clock budget.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
            sample_size: 50,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(self.budget, 50, name, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(self.c.budget, self.sample_size, &full, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(budget: Duration, samples: usize, name: &str, mut f: F) {
    // Calibrate: one iteration to size the batches.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let total_iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let batch = (total_iters / samples as u64).max(1);

    let mut best = per_iter;
    let mut spent = Duration::ZERO;
    for _ in 0..samples {
        let mut b = Bencher { iters: batch, elapsed: Duration::ZERO };
        f(&mut b);
        best = best.min(b.elapsed / batch as u32);
        spent += b.elapsed;
        if spent > budget {
            break;
        }
    }
    println!("{name:<50} {:>12.1} ns/iter (best of batches)", best.as_nanos() as f64);

    // Machine-readable sink: append one JSON line per benchmark to the
    // file named by CRITERION_JSON (collected into BENCH_6.json by
    // `make bench`). Append-only so multiple bench binaries in one
    // `cargo bench` run share the file; the collector takes the last
    // line per name.
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            let line = format!(
                "{{\"name\":\"{}\",\"ns\":{:.1}}}\n",
                name.replace('\\', "\\\\").replace('"', "\\\""),
                best.as_nanos() as f64
            );
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1))
        });
        g.finish();
        assert!(ran);
    }
}
