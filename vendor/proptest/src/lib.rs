//! Offline shim for the `proptest` crate.
//!
//! The workspace builds without registry access, so this reimplements the
//! subset of proptest the test suites use: the `proptest!` macro, the
//! [`Strategy`] trait with `prop_map`, integer-range and tuple strategies,
//! `collection::vec`, `any`, `sample::select`, and the `prop_assert*`
//! macros. Differences from real proptest: sampling is plain Monte-Carlo
//! from a per-test deterministic seed (no shrinking, no persisted failure
//! regressions), and `prop_assert*` panics immediately instead of
//! returning a `TestCaseError`. Case count defaults to 64 and is
//! overridable with `PROPTEST_CASES` — soak runs can set
//! `PROPTEST_CASES=512` or more.
//!
//! ## Reproducing failures
//!
//! When a case fails, the harness prints the generator state that
//! produced it:
//!
//! ```text
//! proptest: path::my_test failed at case 17/512; rerun just this case with PROPTEST_TEST=path::my_test PROPTEST_SEED=0x1234abcd5678ef00
//! ```
//!
//! Re-running with both environment variables replays exactly the
//! failing case of exactly that test (independent of `PROPTEST_CASES`;
//! every other property keeps its normal coverage), which is what makes
//! high-case-count soak failures debuggable.

use std::ops::Range;

/// Deterministic SplitMix64 generator driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (the test's name) so each test gets a
    /// distinct but run-to-run stable stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    /// Resume from a previously reported state (failure replay).
    pub fn from_state(state: u64) -> TestRng {
        TestRng { state }
    }

    /// The current generator state — printed on failure so the exact
    /// case can be replayed with `PROPTEST_SEED`.
    pub fn state(&self) -> u64 {
        self.state
    }
}

/// Number of cases each `proptest!` test runs (env `PROPTEST_CASES`).
pub fn num_cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Drive one property: sample and run `case` [`num_cases`] times from the
/// test's deterministic seed, reporting the failing case's generator
/// state on panic. With `PROPTEST_TEST=<name> PROPTEST_SEED=0x…` in the
/// environment, the *named* test replays exactly one case from that
/// state — the failure-reproduction path for soak runs. The name gate
/// matters: the seed is meaningless to any other test, and without it a
/// bare `PROPTEST_SEED` would silently collapse every other property in
/// the run to one alien-seeded case.
pub fn run_cases(name: &str, mut case: impl FnMut(&mut TestRng)) {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        let target = std::env::var("PROPTEST_TEST").unwrap_or_default();
        if !target.is_empty() && name.ends_with(&target) {
            let state = parse_seed(&seed).unwrap_or_else(|| {
                panic!("PROPTEST_SEED: expected 0x-hex or decimal, got {seed:?}")
            });
            eprintln!("proptest: {name}: replaying single case with PROPTEST_SEED={state:#018x}");
            let mut rng = TestRng::from_state(state);
            case(&mut rng);
            return;
        }
        // Not the targeted test (or no target given): run normally so
        // the rest of the suite keeps its full coverage.
    }
    let mut rng = TestRng::deterministic(name);
    let cases = num_cases();
    for i in 0..cases {
        let seed = rng.state();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest: {name} failed at case {i}/{cases}; rerun just this case with \
                 PROPTEST_TEST={name} PROPTEST_SEED={seed:#018x}"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// `Just(x)` — always yields `x`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length spec for [`vec`]: an exact `usize` or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty vec");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::{proptest, prop_assert, prop_assert_eq, prop_assert_ne};
    pub use crate::{Just, Strategy};
}

/// The `proptest!` block: each contained `#[test] fn name(arg in strategy,
/// ...) { body }` becomes a plain `#[test]` that samples its strategies
/// [`num_cases`] times via [`run_cases`] (which reports the failing
/// case's seed and honors `PROPTEST_SEED` replay). The `#[test]`
/// attribute is captured with the other metas and re-emitted verbatim.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    |rng| {
                        $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                        $body
                    },
                );
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -10i64..10, y in 0u32..5) {
            prop_assert!((-10..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec((0usize..8, any::<u8>()), 0..20)) {
            prop_assert!(v.len() < 20);
            for (a, _) in v {
                prop_assert!(a < 8);
            }
        }

        #[test]
        fn select_and_exact_len(e in prop::sample::select(vec![4usize, 8, 16]), v in prop::collection::vec(0u32..3, 7)) {
            prop_assert!(e == 4 || e == 8 || e == 16);
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn prop_map_applies(d in (0i64..5, 1i64..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((0..20).contains(&d));
        }
    }

    #[test]
    fn failing_case_reports_replayable_seed() {
        // Drive run_cases directly with a property that fails on its
        // 4th case; capture the reported seed and replay it.
        let mut states = Vec::new();
        let mut calls = 0usize;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::run_cases("shim::selftest", |rng| {
                states.push(rng.state());
                calls += 1;
                let v = (0u64..1000).sample(rng);
                assert!(calls < 4, "boom at value {v}");
            });
        }));
        assert!(outcome.is_err(), "the 4th case must fail");
        assert_eq!(calls, 4);
        // The reported seed is the rng state *before* the failing case:
        // replaying from it regenerates the same sample.
        let failing_state = states[3];
        let mut a = crate::TestRng::from_state(failing_state);
        let mut b = crate::TestRng::from_state(failing_state);
        assert_eq!((0u64..1000).sample(&mut a), (0u64..1000).sample(&mut b));
    }

    #[test]
    fn seed_replay_is_gated_on_test_name() {
        std::env::set_var("PROPTEST_SEED", "0x10");
        // No PROPTEST_TEST: every test keeps its full case count.
        let mut n = 0;
        crate::run_cases("shim::gate_a", |_| n += 1);
        assert_eq!(n, crate::num_cases());
        // Name mismatch: still full count.
        std::env::set_var("PROPTEST_TEST", "shim::something_else");
        let mut m = 0;
        crate::run_cases("shim::gate_b", |_| m += 1);
        assert_eq!(m, crate::num_cases());
        // Name match: exactly one case, from exactly the given state.
        std::env::set_var("PROPTEST_TEST", "shim::gate_c");
        let (mut k, mut st) = (0, 0);
        crate::run_cases("shim::gate_c", |rng| {
            k += 1;
            st = rng.state();
        });
        assert_eq!((k, st), (1, 0x10));
        std::env::remove_var("PROPTEST_SEED");
        std::env::remove_var("PROPTEST_TEST");
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(crate::parse_seed("0x10"), Some(16));
        assert_eq!(crate::parse_seed("0X0000000000000010"), Some(16));
        assert_eq!(crate::parse_seed("42"), Some(42));
        assert_eq!(crate::parse_seed("zzz"), None);
    }

    #[test]
    fn cases_honor_env_default() {
        // PROPTEST_CASES is read per call; without the env var the
        // default is 64.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(crate::num_cases(), 64);
        } else {
            assert!(crate::num_cases() > 0);
        }
    }
}
