//! Offline API-compatible shim of the small `rayon` surface this
//! workspace uses (no registry access in this environment — same
//! discipline as the `parking_lot`/`rand`/`proptest`/`criterion` shims:
//! exactly the API the workspace calls, backed by std).
//!
//! Unlike real rayon there is no persistent worker pool: parallel
//! combinators run on **scoped threads** (`std::thread::scope`), so
//! closures may borrow from the caller and every combinator joins its
//! workers before returning. What a "pool" configures here is a
//! *thread allowance* — an upper bound on the OS threads a combinator
//! may use — carried in a thread-local so nested parallelism divides
//! rather than multiplies.
//!
//! # Determinism contract
//!
//! Every combinator is **deterministic by construction**: results are
//! produced in the same order as the sequential equivalent regardless
//! of the allowance, and an allowance of 1 *is* the sequential code
//! path. The workspace's bitwise-reproducibility tests
//! (`RAYON_SHIM_THREADS=1` vs default, and the parallel ≡ sequential
//! proptests in `chaos`/`rsd`) lean on this.
//!
//! # Thread allowance resolution
//!
//! 1. An enclosing [`ThreadPool::install`] sets the allowance for the
//!    calling thread for the closure's duration.
//! 2. Otherwise the process-wide default applies: the
//!    `RAYON_SHIM_THREADS` environment variable (clamped to ≥ 1) if
//!    set, else `std::thread::available_parallelism()`.
//!
//! Threads spawned *by* a combinator run their tasks with an allowance
//! of 1 unless the combinator itself subdivides (as [`join`] does), so
//! a parallel section never recursively oversubscribes the host.

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    /// The calling thread's allowance override (see module docs);
    /// `None` means "use the process-wide default".
    static ALLOWANCE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Parse a `RAYON_SHIM_THREADS`-style override. `None`/unparsable/zero
/// fall back to `fallback` (the host parallelism).
fn resolve_threads(env: Option<&str>, fallback: usize) -> usize {
    env.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| fallback.max(1))
}

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        resolve_threads(std::env::var("RAYON_SHIM_THREADS").ok().as_deref(), host)
    })
}

/// The calling thread's current thread allowance (≥ 1). Inside
/// [`ThreadPool::install`] this is the pool's configured size; outside,
/// the process-wide default (env override or host parallelism).
pub fn current_num_threads() -> usize {
    ALLOWANCE.with(|a| a.get()).unwrap_or_else(default_threads)
}

/// Run `f` with the calling thread's allowance set to `n` (≥ 1),
/// restoring the previous allowance afterwards — panic-safe.
fn with_allowance<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            ALLOWANCE.with(|a| a.set(self.0));
        }
    }
    let prev = ALLOWANCE.with(|a| a.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Builder of a [`ThreadPool`] (API shape of rayon's).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Building a pool cannot fail in the shim; the type exists so call
/// sites keep rayon's `build()?` / `.expect(...)` shape.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("shim thread pools cannot fail to build")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool's thread allowance. `0` (rayon's "default") and
    /// unset both mean the process-wide default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(n) if n >= 1 => n,
            _ => default_threads(),
        };
        Ok(ThreadPool { threads: n })
    }
}

/// A thread *allowance*, not a set of live workers (see module docs).
/// Cheap to build and to share (`Sync`); holds no OS resources.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The allowance combinators see inside [`ThreadPool::install`].
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `op` on the calling thread with this pool's allowance
    /// installed (rayon runs `op` on a pool worker; the shim's
    /// equivalent is allowance scoping — same observable results).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        with_allowance(self.threads, op)
    }
}

/// Run `oper_a` and `oper_b`, potentially in parallel, and return
/// `(ra, rb)` — always in that order. With an allowance of 1 both run
/// sequentially on the calling thread (`a` first, exactly the
/// sequential program). Otherwise `b` runs on a scoped thread and the
/// allowance is split between the halves.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let n = current_num_threads();
    if n <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    let (na, nb) = (n - n / 2, (n / 2).max(1));
    std::thread::scope(|s| {
        let hb = s.spawn(move || with_allowance(nb, oper_b));
        let ra = with_allowance(na, oper_a);
        let rb = hb
            .join()
            .unwrap_or_else(|p| std::panic::resume_unwind(p));
        (ra, rb)
    })
}

pub mod slice {
    //! The chunked-slice subset of `rayon::slice`.

    use super::{current_num_threads, with_allowance};

    /// `[T]::par_chunks` — parallel counterpart of `chunks`.
    pub trait ParallelSlice<T: Sync> {
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
            assert!(chunk_size > 0, "chunk size must be non-zero");
            ParChunks {
                slice: self,
                size: chunk_size,
            }
        }
    }

    /// `[T]::par_sort_unstable` — parallel counterpart of
    /// `sort_unstable`.
    ///
    /// Shim divergence: bounded by `T: Copy` (the merge step copies
    /// through a temporary; the workspace only sorts `Copy` key
    /// tuples). The output is the fully sorted slice — bitwise
    /// identical to `sort_unstable` at any allowance for types whose
    /// `Ord` equality implies identity (every derived `Ord` here).
    pub trait ParallelSliceMut<T: Send> {
        fn par_sort_unstable(&mut self)
        where
            T: Ord + Copy;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_sort_unstable(&mut self)
        where
            T: Ord + Copy,
        {
            par_sort(self, current_num_threads());
        }
    }

    /// Below this length the scoped-thread spawn (tens of µs) dwarfs
    /// the sort itself; recursion bottoms out on `sort_unstable`.
    const SORT_SEQ_CUTOFF: usize = 8 * 1024;

    fn par_sort<T: Ord + Copy + Send>(v: &mut [T], threads: usize) {
        if threads <= 1 || v.len() <= SORT_SEQ_CUTOFF {
            v.sort_unstable();
            return;
        }
        let mid = v.len() / 2;
        {
            let (a, b) = v.split_at_mut(mid);
            let (ta, tb) = (threads - threads / 2, (threads / 2).max(1));
            std::thread::scope(|s| {
                let h = s.spawn(move || par_sort(b, tb));
                par_sort(a, ta);
                h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            });
        }
        // Merge the sorted halves through a temporary.
        let mut tmp = Vec::with_capacity(v.len());
        let (mut i, mut j) = (0, mid);
        while i < mid && j < v.len() {
            if v[j] < v[i] {
                tmp.push(v[j]);
                j += 1;
            } else {
                tmp.push(v[i]);
                i += 1;
            }
        }
        tmp.extend_from_slice(&v[i..mid]);
        tmp.extend_from_slice(&v[j..]);
        v.copy_from_slice(&tmp);
    }

    /// Lazy parallel chunk iterator; combinators consume it.
    #[derive(Debug)]
    pub struct ParChunks<'a, T> {
        slice: &'a [T],
        size: usize,
    }

    impl<'a, T: Sync> ParChunks<'a, T> {
        /// Map each chunk through `f`. Consume with
        /// [`MapChunks::collect`].
        pub fn map<R, F>(self, f: F) -> MapChunks<'a, T, F>
        where
            R: Send,
            F: Fn(&'a [T]) -> R + Sync,
        {
            MapChunks {
                slice: self.slice,
                size: self.size,
                f,
            }
        }
    }

    /// The mapped form of [`ParChunks`].
    #[derive(Debug)]
    pub struct MapChunks<'a, T, F> {
        slice: &'a [T],
        size: usize,
        f: F,
    }

    impl<'a, T: Sync, F> MapChunks<'a, T, F> {
        /// Run the map — chunks spread over at most the current
        /// allowance in scoped threads — and collect the results **in
        /// chunk order** (each worker takes a contiguous block of
        /// chunks; blocks are concatenated in worker order).
        pub fn collect<R, C>(self) -> C
        where
            R: Send,
            F: Fn(&'a [T]) -> R + Sync,
            C: FromIterator<R>,
        {
            let nchunks = self.slice.len().div_ceil(self.size);
            let workers = current_num_threads().min(nchunks);
            if workers <= 1 {
                return self.slice.chunks(self.size).map(&self.f).collect();
            }
            let per = nchunks.div_ceil(workers);
            let (slice, size, f) = (self.slice, self.size, &self.f);
            let mut blocks: Vec<Vec<R>> = Vec::with_capacity(workers);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let lo = w * per;
                        let hi = ((w + 1) * per).min(nchunks);
                        s.spawn(move || {
                            with_allowance(1, || {
                                (lo..hi)
                                    .map(|c| {
                                        let a = c * size;
                                        let b = (a + size).min(slice.len());
                                        f(&slice[a..b])
                                    })
                                    .collect::<Vec<R>>()
                            })
                        })
                    })
                    .collect();
                for h in handles {
                    blocks.push(h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
                }
            });
            blocks.into_iter().flatten().collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface, like `rayon::prelude::*`.
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn resolve_threads_parses_and_falls_back() {
        assert_eq!(resolve_threads(Some("6"), 2), 6);
        assert_eq!(resolve_threads(Some(" 3 "), 2), 3);
        assert_eq!(resolve_threads(Some("0"), 2), 2, "zero means default");
        assert_eq!(resolve_threads(Some("nope"), 2), 2);
        assert_eq!(resolve_threads(None, 2), 2);
        assert_eq!(resolve_threads(None, 0), 1, "allowance is never zero");
    }

    #[test]
    fn install_scopes_the_allowance_and_restores_it() {
        let outside = current_num_threads();
        assert!(outside >= 1);
        pool(5).install(|| {
            assert_eq!(current_num_threads(), 5);
            pool(2).install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 5, "nested install restored");
        });
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn install_restores_on_panic() {
        let outside = current_num_threads();
        let r = std::panic::catch_unwind(|| pool(7).install(|| panic!("boom")));
        assert!(r.is_err());
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn builder_zero_means_default() {
        let d = pool(0).current_num_threads();
        assert_eq!(d, ThreadPoolBuilder::new().build().unwrap().current_num_threads());
        assert!(d >= 1);
    }

    #[test]
    fn join_returns_in_order_at_any_allowance() {
        for n in [1, 2, 8] {
            let (a, b) = pool(n).install(|| join(|| 1 + 1, || "b"));
            assert_eq!((a, b), (2, "b"));
        }
    }

    #[test]
    fn join_splits_the_allowance() {
        let (a, b) = pool(8).install(|| join(current_num_threads, current_num_threads));
        assert_eq!(a + b, 8, "halves partition the parent allowance");
        assert!(a >= 1 && b >= 1);
    }

    #[test]
    fn join_sequential_when_allowance_is_one() {
        // Side-effect order proves a ran before b (the sequential path).
        let log = std::sync::Mutex::new(Vec::new());
        pool(1).install(|| {
            join(|| log.lock().unwrap().push('a'), || log.lock().unwrap().push('b'))
        });
        assert_eq!(*log.lock().unwrap(), vec!['a', 'b']);
    }

    #[test]
    fn par_chunks_map_collect_preserves_chunk_order() {
        let data: Vec<u32> = (0..1000).collect();
        let seq: Vec<u64> = data
            .chunks(64)
            .map(|c| c.iter().map(|&x| x as u64).sum())
            .collect();
        for n in [1, 3, 8, 100] {
            let par: Vec<u64> = pool(n).install(|| {
                data.par_chunks(64)
                    .map(|c| c.iter().map(|&x| x as u64).sum())
                    .collect()
            });
            assert_eq!(par, seq, "allowance {n}");
        }
    }

    #[test]
    fn par_chunks_handles_empty_and_single() {
        let empty: [u32; 0] = [];
        let r: Vec<usize> = empty.par_chunks(4).map(<[u32]>::len).collect();
        assert!(r.is_empty());
        let one = [9u32];
        let r: Vec<usize> = pool(4).install(|| one.par_chunks(4).map(<[u32]>::len).collect());
        assert_eq!(r, vec![1]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be non-zero")]
    fn zero_chunk_size_is_rejected() {
        let _ = [1u32].par_chunks(0);
    }

    #[test]
    fn par_sort_matches_sequential_sort() {
        // Deterministic pseudo-random data, long enough to recurse.
        let mut x = 0x9E3779B97F4A7C15u64;
        let data: Vec<(u32, u32)> = (0..40_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x >> 32) as u32 % 997, x as u32)
            })
            .collect();
        let mut seq = data.clone();
        seq.sort_unstable();
        for n in [1, 2, 8] {
            let mut par = data.clone();
            pool(n).install(|| par.par_sort_unstable());
            assert_eq!(par, seq, "allowance {n}");
        }
    }

    #[test]
    fn combinators_inside_spawned_workers_degrade_to_sequential() {
        // A map body's own allowance is 1: nested parallelism divides.
        let data = [0u8; 4096];
        let inner: Vec<usize> = pool(4).install(|| {
            data.par_chunks(1024).map(|_| current_num_threads()).collect()
        });
        assert_eq!(inner, vec![1, 1, 1, 1]);
    }
}
