//! Offline shim for the `rand` crate.
//!
//! The workspace builds without registry access, so this provides the small
//! surface the applications use — `StdRng::seed_from_u64` + `Rng::gen_range`
//! — backed by SplitMix64. The stream is deterministic across platforms and
//! runs, which is exactly what the seeded workload generators want; it is
//! *not* the ChaCha stream real `rand 0.8` would produce, so absolute
//! workload geometry differs from a crates.io build, but every in-repo
//! cross-check compares builds against each other under the same stream.

use std::ops::Range;

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `gen_range` can sample from a half-open `Range`.
pub trait UniformSample: Copy + PartialOrd {
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = range.end.wrapping_sub(range.start) as u128;
                range.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize);

macro_rules! uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformSample for $t {
            fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                (range.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                range.start + (unit as $t) * (range.end - range.start)
            }
        }
    )*};
}

uniform_float!(f32, f64);

pub trait Rng: RngCore {
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_range(0.0f64..1.0) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — tiny, full-period, deterministic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(-3.0f64..3.0);
            assert_eq!(x, b.gen_range(-3.0f64..3.0));
            assert!((-3.0..3.0).contains(&x));
            let k = a.gen_range(0u32..17);
            assert_eq!(k, b.gen_range(0u32..17));
            assert!(k < 17);
            let s = a.gen_range(-5i64..5);
            assert_eq!(s, b.gen_range(-5i64..5));
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..1000)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..1000)).collect();
        assert_ne!(va, vb);
    }
}
