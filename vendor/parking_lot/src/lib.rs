//! Offline shim for the `parking_lot` crate, backed by `std::sync`.
//!
//! This workspace builds in an environment with no access to crates.io, so
//! the handful of `parking_lot` types the runtime uses are provided here
//! with the same (non-poisoning) API: `lock`/`read`/`write` return guards
//! directly, and `Condvar::wait` takes `&mut MutexGuard`.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard wrapping the std guard in an `Option` so `Condvar::wait` can take
/// it by `&mut` (parking_lot's signature) while std's `wait` moves it.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().unwrap()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().unwrap()
    }
}

#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().unwrap();
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Arc::new(Mutex::new(0usize));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while *g == 0 {
                cv2.wait(&mut g);
            }
            *g
        });
        *m.lock() = 7;
        cv.notify_all();
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }
}
